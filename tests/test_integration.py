"""Cross-system integration tests.

Replays identical interleaved update/query workloads through every index
implementation and asserts all five return identical distance multisets —
the strongest end-to-end statement the library can make.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveKnnIndex, RoadIndex, VTreeGpuIndex, VTreeIndex
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.mobility.workload import make_workload
from repro.roadnet.generators import grid_road_network
from repro.server.server import QueryServer


def _all_indexes(graph):
    return (
        GGridIndex(graph, GGridConfig(eta=3, delta_b=8)),
        VTreeIndex(graph, leaf_size=16, seed=1),
        VTreeGpuIndex(graph, leaf_size=16, seed=1),
        RoadIndex(graph, leaf_size=16, seed=1),
        NaiveKnnIndex(graph),
    )


def _distances(answers):
    return [[round(d, 9) for d in a.distances()] for a in answers]


def test_all_indexes_agree_on_replay(medium_graph):
    workload = make_workload(
        medium_graph, num_objects=40, duration=10.0, num_queries=6, k=8, seed=3
    )
    results = {}
    for index in _all_indexes(medium_graph):
        _, answers = QueryServer(index).replay(workload, collect_answers=True)
        results[index.name] = _distances(answers)
    reference = results.pop("Naive")
    for name, got in results.items():
        assert got == reference, f"{name} diverged from the oracle"


@settings(max_examples=5, deadline=None)
@given(st.integers(0, 10**6))
def test_all_indexes_agree_property(seed):
    graph = grid_road_network(7, 7, seed=seed % 11)
    workload = make_workload(
        graph,
        num_objects=15,
        duration=6.0,
        num_queries=3,
        k=4,
        update_frequency=1.0 + (seed % 3),
        seed=seed,
    )
    results = {}
    for index in _all_indexes(graph):
        _, answers = QueryServer(index).replay(workload, collect_answers=True)
        results[index.name] = _distances(answers)
    reference = results.pop("Naive")
    for name, got in results.items():
        assert got == reference, f"{name} diverged from the oracle"


def test_ggrid_lazy_processes_fewer_entries(medium_graph):
    """The point of the paper in one assertion: under the same workload,
    G-Grid's update handling touches far fewer index entries than the
    eager baselines."""
    workload = make_workload(
        medium_graph, num_objects=40, duration=10.0, num_queries=4, k=8, seed=5
    )
    touches = {}
    for index in (
        GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8)),
        VTreeIndex(medium_graph, leaf_size=16, seed=1),
        RoadIndex(medium_graph, leaf_size=16, seed=1),
    ):
        report, _ = QueryServer(index).replay(workload)
        touches[index.name] = report.update_touches
    assert touches["G-Grid"] * 2 < touches["V-Tree"]
    assert touches["G-Grid"] * 2 < touches["ROAD"]


def test_dataset_pipeline_end_to_end():
    """Named dataset -> workload -> G-Grid replay -> exact answers."""
    from repro.roadnet.datasets import load_dataset

    graph = load_dataset("NY")
    workload = make_workload(
        graph, num_objects=60, duration=8.0, num_queries=4, k=8, seed=9
    )
    ggrid = GGridIndex(graph)
    naive = NaiveKnnIndex(graph)
    _, a = QueryServer(ggrid).replay(workload, collect_answers=True)
    _, b = QueryServer(naive).replay(workload, collect_answers=True)
    assert _distances(a) == _distances(b)
    assert not any(ans.used_fallback for ans in a)
