"""Planner-routed answers are byte-identical to an always-G-Grid server.

The planner's acceptance bar: whatever it routes — primary, TEN, or a
cache hit — the client sees exactly what a fixed G-Grid server would
have returned.  Comparisons use the repository's conformance convention
(round to 9 decimals, tie groups as id sets): TEN re-derives distances
with a forward Dijkstra, and on rare equal-length alternative paths the
float fold can land one ulp from G-Grid's refine (same convention the
oracle and cluster suites use, see ``tests/conformance``).
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardRouter
from repro.config import GGridConfig
from repro.core import GGridIndex
from repro.mobility.workload import Query, make_workload, random_locations
from repro.plan import QueryPlanner
from repro.roadnet.generators import grid_road_network
from repro.server.server import QueryServer

from tests.conformance.test_oracle_conformance import (
    assert_matches_oracle,
    entries_of,
)

pytestmark = [pytest.mark.plan, pytest.mark.conformance]

CONFIG = GGridConfig(eta=3, delta_b=8)


def pooled(workload, graph, pool_size=6):
    pool = random_locations(graph, pool_size, seed=23)
    workload.queries = [
        Query(t=q.t, location=pool[i % pool_size], k=q.k)
        for i, q in enumerate(workload.queries)
    ]
    return workload


def mixes(graph):
    """Update-heavy, balanced and query-dominant over the same graph."""
    shapes = [
        (40, 1.0, 20, 4),  # update-heavy: TEN stays parked
        (40, 0.1, 60, 4),  # balanced
        (30, 0.004, 120, 4),  # query-dominant: TEN routes + cache serves
    ]
    for seed, (objects, freq, queries, k) in enumerate(shapes):
        yield pooled(
            make_workload(
                graph,
                num_objects=objects,
                duration=30.0,
                num_queries=queries,
                k=k,
                update_frequency=freq,
                seed=seed + 60,
            ),
            graph,
        )


@pytest.mark.parametrize("mix", range(3))
def test_planner_matches_fixed_ggrid(mix):
    graph = grid_road_network(8, 8, seed=41)
    workload = list(mixes(graph))[mix]

    _, want = QueryServer(GGridIndex(graph, CONFIG)).replay(
        workload, collect_answers=True
    )
    planner = QueryPlanner(k_max=16)
    _, got = QueryServer(GGridIndex(graph, CONFIG), planner=planner).replay(
        workload, collect_answers=True
    )
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert_matches_oracle(entries_of(a), entries_of(b))
    total = planner.summary()
    routed = total["decisions_ggrid"] + total["decisions_ten"]
    assert routed + total.get("cache_hits", 0) == len(workload.queries)


def test_query_dominant_mix_actually_exercises_ten_and_cache():
    """Guard the conformance test's coverage: the third mix must route
    TEN and serve cache hits, or the byte-identity claim is vacuous."""
    graph = grid_road_network(8, 8, seed=41)
    workload = list(mixes(graph))[2]
    planner = QueryPlanner(k_max=16)
    QueryServer(GGridIndex(graph, CONFIG), planner=planner).replay(workload)
    summary = planner.summary()
    assert summary["decisions_ten"] > 0
    assert summary["cache_hits"] > 0


def test_sharded_planner_matches_sharded_plain():
    """A per-shard planner must not disturb the router's pruning
    contract: sharded-with-planner == sharded-without, byte for byte at
    the conformance convention."""
    graph = grid_road_network(8, 8, seed=43)
    workload = pooled(
        make_workload(
            graph,
            num_objects=40,
            duration=30.0,
            num_queries=60,
            k=4,
            update_frequency=0.01,
            seed=71,
        ),
        graph,
    )
    with ShardRouter(graph, CONFIG, num_shards=3) as plain:
        _, want = plain.replay(workload, collect_answers=True)
    with ShardRouter(
        graph,
        CONFIG,
        num_shards=3,
        planner_factory=lambda: QueryPlanner(k_max=16),
    ) as routed:
        _, got = routed.replay(workload, collect_answers=True)
        planners = [shard.server.planner for shard in routed.shards.values()]
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert_matches_oracle(entries_of(a), entries_of(b))
    assert all(p is not None for p in planners)
