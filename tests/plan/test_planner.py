"""The adaptive QueryPlanner: lifecycle, determinism, explainability.

Everything the planner consumes is deterministic over the modelled
clock, so the replay-twice test demands *identical* decisions and
counters — not statistically similar ones.  The lifecycle tests walk the
parked → unparked → parked ladder through public behaviour (seeded
costs, observed traffic), and the metrics test checks the
``repro_plan_*`` families the server publishes.
"""

from __future__ import annotations

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.errors import PlanError
from repro.mobility.workload import Query, make_workload, random_locations
from repro.obs import Observability
from repro.plan import QueryPlanner
from repro.plan.planner import _DecayCounter
from repro.roadnet.generators import grid_road_network
from repro.server.planner import CalibratedCosts
from repro.server.server import QueryServer

pytestmark = pytest.mark.plan

CONFIG = GGridConfig(eta=3, delta_b=8)

#: a seed claiming G-Grid queries are ruinously expensive — forces the
#: planner to unpark TEN on its very first decision
EXPENSIVE_GG = CalibratedCosts(
    touches_per_update=3.0, query_gpu_seconds=1.0, query_cpu_seconds=1.0
)
#: and one claiming they are free — TEN can never win, stays parked
FREE_GG = CalibratedCosts(
    touches_per_update=3.0, query_gpu_seconds=0.0, query_cpu_seconds=0.0
)


@pytest.fixture(scope="module")
def graph():
    return grid_road_network(6, 6, seed=31)


def attached(graph, **kwargs):
    planner = QueryPlanner(**kwargs)
    index = GGridIndex(graph, CONFIG)
    planner.attach(index)
    return planner, index


def pooled_workload(graph, **kwargs):
    workload = make_workload(graph, **kwargs)
    pool = random_locations(graph, 6, seed=23)
    workload.queries = [
        Query(t=q.t, location=pool[i % 6], k=q.k)
        for i, q in enumerate(workload.queries)
    ]
    return workload


def test_constructor_and_attach_guards(graph):
    with pytest.raises(PlanError):
        QueryPlanner(k_max=0)
    planner = QueryPlanner()
    with pytest.raises(PlanError, match="graph/grid/config"):
        planner.attach(object())
    planner, index = attached(graph)
    planner.attach(index)  # re-attaching the same index is a no-op
    with pytest.raises(PlanError, match="already attached"):
        planner.attach(GGridIndex(graph, CONFIG))


def _loc(graph):
    return random_locations(graph, 1, seed=1)[0]


def test_starts_parked_with_zero_update_overhead(graph):
    from repro.core.messages import Message

    planner, _ = attached(graph)
    assert planner.summary()["parked"] == 1.0
    touches = planner.observe(Message(1, 0, 0.0, 1.0))
    assert touches == 0  # the parked TEN tap charges nothing
    assert planner.ten.messages_ingested == 0
    plan = planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))
    assert plan.backend == "ggrid"
    assert "ten parked" in plan.reason


def test_unpark_resyncs_from_primary_table(graph):
    planner, index = attached(graph, seed_costs=EXPENSIVE_GG)
    from repro.core.messages import Message

    for obj in range(8):
        message = Message(obj, obj % graph.num_edges, 0.0, 1.0)
        index.ingest(message)
        planner.observe(message)
    assert planner.ten.num_objects == 0  # parked: tap dormant
    plan = planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))
    assert plan.backend == "ten"
    assert "unparked" in plan.reason
    assert planner.unparks == 1
    assert planner.summary()["parked"] == 0.0
    assert planner.ten.num_objects == 8  # revived from the object table


def test_reparks_after_sustained_primary_preference(graph):
    planner, _ = attached(graph, seed_costs=EXPENSIVE_GG, park_after=3)
    planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))  # unparks
    # measurements now say TEN lookups are ruinous: primary wins every time
    planner._cost_ten_lookup = 10.0
    for i in range(3):
        plan = planner.plan_query(Query(t=2.5 + i, location=_loc(graph), k=4))
        assert plan.backend == "ggrid"
        assert "ggrid is cheaper" in plan.reason
    assert planner.parks == 1
    assert planner.summary()["parked"] == 1.0


def test_k_beyond_k_max_routes_primary(graph):
    planner, _ = attached(graph, seed_costs=EXPENSIVE_GG, k_max=4)
    plan = planner.plan_query(Query(t=2.0, location=_loc(graph), k=9))
    assert plan.backend == "ggrid"
    assert "exceeds TEN k_max" in plan.reason


def test_brownout_forces_primary(graph):
    planner, _ = attached(graph, seed_costs=EXPENSIVE_GG)
    planner.set_brownout(True)
    plan = planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))
    assert plan.backend == "ggrid"
    assert "brownout" in plan.reason
    planner.set_brownout(False)
    assert planner.plan_query(Query(t=3.0, location=_loc(graph), k=4)).backend == "ten"


def test_plans_are_explainable(graph):
    planner, _ = attached(graph, seed_costs=FREE_GG)
    plan = planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))
    assert plan.rung == "gpu"
    assert plan.predicted_cost == pytest.approx(0.0)
    # every reason carries the rates and costs it was decided on
    assert "u=" in plan.reason and "ggrid=" in plan.reason
    assert planner.last_plan is plan


def test_epoch_plan_uses_worst_k(graph):
    planner, _ = attached(graph, seed_costs=EXPENSIVE_GG, k_max=6)
    queries = [
        Query(t=2.0, location=_loc(graph), k=2),
        Query(t=2.1, location=_loc(graph), k=9),
    ]
    assert planner.plan_epoch(queries).backend == "ggrid"  # k=9 > k_max
    assert planner.plan_epoch(queries[:1]).backend == "ten"


def test_decay_counter_rates():
    counter = _DecayCounter(tau=10.0)
    assert counter.rate(5.0) == 0.0
    for t in (0.0, 1.0, 2.0):
        counter.bump(t)
    burst = counter.rate(2.0)
    assert burst > 0
    assert counter.rate(40.0) < burst / 10  # decayed away
    counter.bump(1.0)  # out-of-order timestamps never go negative
    assert counter.rate(2.0) > 0


def test_replay_twice_plans_identically(graph):
    workload = pooled_workload(
        graph,
        num_objects=40,
        duration=20.0,
        num_queries=60,
        k=4,
        update_frequency=0.05,
        seed=9,
    )

    def run():
        planner = QueryPlanner(k_max=16)
        server = QueryServer(GGridIndex(graph, CONFIG), planner=planner)
        _, answers = server.replay(workload, collect_answers=True)
        return planner.summary(), [
            [(e.obj, e.distance) for e in a.entries] for a in answers
        ]

    summary_a, answers_a = run()
    summary_b, answers_b = run()
    assert summary_a == summary_b
    assert answers_a == answers_b
    assert summary_a["decisions_ggrid"] + summary_a["decisions_ten"] > 0


def test_server_serves_cache_hits(graph):
    workload = pooled_workload(
        graph,
        num_objects=30,
        duration=20.0,
        num_queries=80,
        k=4,
        update_frequency=0.01,
        seed=9,
    )
    planner = QueryPlanner(k_max=16)
    server = QueryServer(GGridIndex(graph, CONFIG), planner=planner)
    server.replay(workload)
    summary = planner.summary()
    assert summary["cache_hits"] > 0
    decisions = summary["decisions_ggrid"] + summary["decisions_ten"]
    # hits short-circuit planning: decisions only cover the misses
    assert decisions + summary["cache_hits"] == 80


def test_metric_families_publish(graph):
    obs = Observability()
    planner, index = attached(graph, obs=obs, seed_costs=FREE_GG)
    planner.plan_query(Query(t=2.0, location=_loc(graph), k=4))
    metrics = obs.registry.snapshot()["metrics"]
    decisions = metrics["repro_plan_decisions_total"]["values"]
    assert {"labels": {"backend": "ggrid"}, "value": 1} in decisions
    assert metrics["repro_plan_ten_parked"]["values"][0]["value"] == 1
    for name in (
        "repro_plan_cache_hits_total",
        "repro_plan_cache_misses_total",
        "repro_plan_cache_invalidations_total",
        "repro_plan_recalibrations_total",
    ):
        assert name in metrics
