"""Every pluggable backend honours the one IndexBackend contract.

One randomized oracle fixture — co-located ties, ``k`` exceeding the
object count, an object-free scene — runs through every name
:func:`repro.plan.make_backend` knows.  Index-vs-oracle comparisons use
the repository's conformance convention (round to 9 decimals, compare
tie groups as id sets); the shared :func:`validate_knn_args` prologue is
checked to raise identically everywhere.
"""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.core.messages import Message
from repro.errors import GraphError, PlanError, QueryError
from repro.plan import (
    IndexBackend,
    make_backend,
    supports_batch,
    supports_removal,
    validate_knn_args,
)
from repro.plan.backends import BACKEND_NAMES
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

from tests.conformance.oracle import oracle_knn
from tests.conformance.test_oracle_conformance import (
    assert_matches_oracle,
    entries_of,
)
from tests.conftest import random_location

pytestmark = pytest.mark.plan

CONFIG = GGridConfig(eta=3, delta_b=8)


def build(name, graph, placements, t=1.0):
    backend = make_backend(name, graph, config=CONFIG)
    for obj, loc in placements.items():
        backend.ingest(Message(obj, loc.edge_id, loc.offset, t))
    return backend


@pytest.fixture(scope="module")
def scene():
    """A randomized scene with deliberate co-located ties."""
    rng = random.Random(13)
    graph = grid_road_network(6, 6, seed=12)
    placements = {obj: random_location(graph, rng) for obj in range(24)}
    spot = NetworkLocation(3, 0.5 * graph.edge(3).weight)
    for obj in (31, 27, 29):  # shuffled ids sharing one location
        placements[obj] = spot
    queries = [(random_location(graph, rng), k) for k in (1, 4, 9, 16)]
    queries.append((NetworkLocation(0, 0.0), 5))  # offset-0 source case
    return graph, placements, queries


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_backend_satisfies_protocol(name, scene):
    graph, _, _ = scene
    backend = make_backend(name, graph, config=CONFIG)
    assert isinstance(backend, IndexBackend)
    assert isinstance(backend.name, str) and backend.name


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_backend_matches_oracle(name, scene):
    graph, placements, queries = scene
    backend = build(name, graph, placements)
    for loc, k in queries:
        got = entries_of(backend.knn(loc, k))
        assert_matches_oracle(got, oracle_knn(graph, placements, loc, k))
        # canonical order: ascending (distance, id), no padding
        assert got == sorted(got, key=lambda e: (e[1], e[0]))


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_k_exceeds_object_count(name, scene):
    graph, _, _ = scene
    rng = random.Random(5)
    placements = {obj: random_location(graph, rng) for obj in range(3)}
    backend = build(name, graph, placements)
    query = random_location(graph, rng)
    got = entries_of(backend.knn(query, 10))
    assert_matches_oracle(got, oracle_knn(graph, placements, query, 10))
    assert len(got) == 3


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_empty_scene_returns_empty(name, scene):
    graph, _, _ = scene
    backend = make_backend(name, graph, config=CONFIG)
    answer = backend.knn(random_location(graph, random.Random(8)), 4)
    assert answer.entries == []


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_shared_prologue_rejects_bad_args(name, scene):
    graph, placements, _ = scene
    backend = build(name, graph, placements)
    loc = NetworkLocation(0, 0.0)
    for bad_k in (0, -3):
        with pytest.raises(QueryError):
            backend.knn(loc, bad_k)
    with pytest.raises(GraphError):
        backend.knn(NetworkLocation(graph.num_edges + 7, 0.0), 2)
    with pytest.raises(GraphError):
        backend.knn(NetworkLocation(0, graph.edge(0).weight * 2.0), 2)


def test_validate_knn_args_direct(scene):
    graph, _, _ = scene
    validate_knn_args(graph, NetworkLocation(0, 0.0), 1)  # no raise
    with pytest.raises(QueryError):
        validate_knn_args(graph, NetworkLocation(0, 0.0), 0)


def test_capability_detection(scene):
    graph, _, _ = scene
    ggrid = make_backend("ggrid", graph, config=CONFIG)
    ten = make_backend("ten", graph, config=CONFIG)
    assert supports_batch(ggrid) and supports_removal(ggrid)
    assert not supports_batch(ten) and supports_removal(ten)
    assert not supports_removal(make_backend("naive", graph))


def test_unknown_backend_name(scene):
    graph, _, _ = scene
    with pytest.raises(PlanError, match="unknown backend"):
        make_backend("btree", graph)


def test_ten_borrows_ggrid_expiry(scene):
    graph, _, _ = scene
    config = GGridConfig(eta=3, delta_b=8, t_delta=7.5)
    assert make_backend("ten", graph, config=config).t_delta == 7.5
