"""Adaptive planner suite: backends, TEN, cache, planner, conformance."""
