"""The delta-invalidated result cache: no stale answer, ever.

The central property, mirrored from the subscription manager's
dirty-marking rules: at any point in a randomized interleaving of moves,
removals and queries, a cache *hit* is byte-identical (same floats, same
order) to what a cold query against the live index would return right
now.  Hypothesis drives the interleavings; the deterministic tests pin
the individual invalidation rules (member move, nearby move, far move,
non-member removal, expiry, time buckets, FIFO capacity).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import PlanError
from repro.plan import ResultCache
from repro.roadnet.generators import grid_road_network

from tests.conftest import random_location

pytestmark = pytest.mark.plan

CONFIG = GGridConfig(eta=3, delta_b=8)


def entries_exact(answer):
    return [(e.obj, e.distance) for e in answer.entries]


def build_scene(seed, num_objects=18, t_delta=float("inf")):
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed + 50)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8, t_delta=t_delta))
    cache = ResultCache(index.grid, t_delta=t_delta)
    placements = {}
    for obj in range(num_objects):
        loc = random_location(graph, rng)
        placements[obj] = loc
        message = Message(obj, loc.edge_id, loc.offset, 1.0)
        index.ingest(message)
        cache.observe(message)
    return rng, graph, index, cache


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6))
def test_hit_is_byte_identical_to_cold_query(seed):
    """Randomized interleaving: every hit equals a cold re-query exactly."""
    rng, graph, index, cache = build_scene(seed)
    t = 2.0
    hits = 0
    for _ in range(40):
        t += 0.25
        if rng.random() < 0.4:  # a move
            obj = rng.randrange(18)
            loc = random_location(graph, rng)
            message = Message(obj, loc.edge_id, loc.offset, t)
            index.ingest(message)
            cache.observe(message)
        else:  # a query from a small repeated pool (cacheable traffic)
            pool_rng = random.Random(seed + 1)
            pool = [random_location(graph, pool_rng) for _ in range(4)]
            location = rng.choice(pool)
            k = rng.choice((2, 5))
            cold = index.knn(location, k, t_now=t)
            cached = cache.lookup(location, k, t)
            if cached is not None:
                hits += 1
                assert entries_exact(cached) == entries_exact(cold)
            else:
                cache.store(location, k, t, cold)
    assert cache.hits == hits
    assert cache.misses > 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_no_entry_survives_a_message_in_its_expansion(seed):
    """Any move the pruning bound cannot exclude drops the entry.

    Stronger than the serving-path property above: after every single
    message, every entry still cached is *proven* consistent by
    recomputing it cold.
    """
    rng, graph, index, cache = build_scene(seed, num_objects=12)
    queries = [(random_location(graph, rng), rng.choice((2, 4))) for _ in range(5)]
    t = 2.0
    for location, k in queries:
        cache.store(location, k, t, index.knn(location, k, t_now=t))
    for _ in range(15):
        t += 0.5
        obj = rng.randrange(12)
        loc = random_location(graph, rng)
        message = Message(obj, loc.edge_id, loc.offset, t)
        index.ingest(message)
        cache.observe(message)
        for location, k in queries:
            cached = cache.lookup(location, k, t)
            if cached is not None:
                cold = index.knn(location, k, t_now=t)
                assert entries_exact(cached) == entries_exact(cold)
                cache.store(location, k, t, cold)


def test_member_move_invalidates():
    rng, graph, index, cache = build_scene(3)
    location = random_location(graph, rng)
    answer = index.knn(location, 3, t_now=2.0)
    cache.store(location, 3, 2.0, answer)
    member = answer.entries[0].obj
    loc = random_location(graph, rng)
    cache.observe(Message(member, loc.edge_id, loc.offset, 2.5))
    assert len(cache) == 0
    assert cache.invalidations == 1


def test_nonmember_removal_is_provably_safe():
    rng, graph, index, cache = build_scene(4)
    location = random_location(graph, rng)
    answer = index.knn(location, 3, t_now=2.0)
    cache.store(location, 3, 2.0, answer)
    members = {e.obj for e in answer.entries}
    outsider = next(o for o in range(18) if o not in members)
    cache.observe_remove(outsider, 2.5)
    assert len(cache) == 1  # a removal can only grow distances
    cache.observe_remove(answer.entries[0].obj, 3.0)
    assert len(cache) == 0  # a member removal always invalidates


def test_short_answer_has_infinite_radius():
    """k objects weren't found: any move anywhere could complete the
    answer, so the entry must never survive one."""
    rng, graph, index, cache = build_scene(5, num_objects=2)
    location = random_location(graph, rng)
    cache.store(location, 5, 2.0, index.knn(location, 5, t_now=2.0))
    loc = random_location(graph, rng)
    cache.observe(Message(7, loc.edge_id, loc.offset, 2.5))
    assert len(cache) == 0


def test_expiry_horizon_and_time_buckets():
    rng, graph, index, cache = build_scene(6, t_delta=10.0)
    location = random_location(graph, rng)
    answer = index.knn(location, 3, t_now=2.0)
    cache.store(location, 3, 2.0, answer)
    assert cache.lookup(location, 3, 2.5) is not None
    # bucket_s defaults to t_delta: t=11.5 is a new bucket, a plain miss
    assert cache.lookup(location, 3, 11.5) is None
    assert cache.invalidations == 0

    # a wide bucket isolates the expiry rule itself: same key, but all
    # members reported at t=1, so past t=11 lazy cleaning drops them
    wide = ResultCache(index.grid, t_delta=10.0, bucket_s=100.0)
    for obj in range(18):
        wide._last_seen[obj] = 1.0
    wide.store(location, 3, 2.0, answer)
    assert wide.lookup(location, 3, 2.5) is not None
    assert wide.lookup(location, 3, 11.5) is None
    assert wide.invalidations == 1 and len(wide) == 0


def test_earlier_time_never_served_from_later_store():
    rng, graph, index, cache = build_scene(7)
    location = random_location(graph, rng)
    cache.store(location, 3, 30.0, index.knn(location, 3, t_now=30.0))
    # same bucket, earlier t: visibility is monotone, the answer may differ
    assert cache.lookup(location, 3, 29.0) is None


def test_fifo_capacity_and_constructor_guards():
    rng, graph, index, _ = build_scene(8)
    cache = ResultCache(index.grid, max_entries=2)
    for k in (1, 2, 3):
        location = random_location(graph, rng)
        cache.store(location, k, 2.0, index.knn(location, k, t_now=2.0))
    assert len(cache) == 2
    with pytest.raises(PlanError):
        ResultCache(index.grid, max_entries=0)
    with pytest.raises(PlanError):
        ResultCache(index.grid, bucket_s=0.0)
