"""The TEN materialized top-k-neighbor index: laziness, exactness, expiry.

The index's whole value is deferral — new objects take a pruned
incremental insert, moves coalesce into one rebuild at the next query —
so these tests pin both the *answers* (always the oracle's) and the
*accounting* (when a rebuild actually happened), because the planner
prices TEN by those counters.
"""

from __future__ import annotations

import random

import pytest

from repro.core.messages import Message
from repro.errors import QueryError, UnknownObjectError
from repro.plan import TenIndex
from repro.roadnet.generators import grid_road_network

from tests.conformance.oracle import oracle_knn
from tests.conformance.test_oracle_conformance import (
    assert_matches_oracle,
    entries_of,
)
from tests.conftest import random_location

pytestmark = pytest.mark.plan


@pytest.fixture(scope="module")
def graph():
    return grid_road_network(6, 6, seed=21)


def place(rng, graph, objects, index, t=1.0):
    placements = {}
    for obj in objects:
        placements[obj] = random_location(graph, rng)
        index.ingest(Message(obj, placements[obj].edge_id, placements[obj].offset, t))
    return placements


def test_first_query_pays_one_build_then_lists_are_reused(graph):
    rng = random.Random(1)
    index = TenIndex(graph, k_max=8)
    placements = place(rng, graph, range(20), index)
    assert index.rebuilds_full == 0  # ingest is pure bookkeeping
    queries = [random_location(graph, rng) for _ in range(6)]
    for loc in queries:
        assert_matches_oracle(
            entries_of(index.knn(loc, 5)), oracle_knn(graph, placements, loc, 5)
        )
    assert index.rebuilds_full == 1


def test_new_object_takes_incremental_insert(graph):
    rng = random.Random(2)
    index = TenIndex(graph, k_max=8)
    placements = place(rng, graph, range(15), index)
    index.knn(random_location(graph, rng), 4)  # force the build
    # a brand-new object must not trigger a full rebuild
    loc = random_location(graph, rng)
    placements[99] = loc
    index.ingest(Message(99, loc.edge_id, loc.offset, 2.0))
    query = random_location(graph, rng)
    assert_matches_oracle(
        entries_of(index.knn(query, 6)), oracle_knn(graph, placements, query, 6)
    )
    assert index.rebuilds_full == 1
    assert index.inserts_incremental == 1


def test_moves_coalesce_into_one_rebuild(graph):
    rng = random.Random(3)
    index = TenIndex(graph, k_max=8)
    placements = place(rng, graph, range(15), index)
    index.knn(random_location(graph, rng), 4)
    for t in (2.0, 3.0, 4.0):  # one object thrashing: three moves
        loc = random_location(graph, rng)
        placements[0] = loc
        index.ingest(Message(0, loc.edge_id, loc.offset, t))
    assert index.rebuilds_full == 1  # still lazy
    query = random_location(graph, rng)
    assert_matches_oracle(
        entries_of(index.knn(query, 6)), oracle_knn(graph, placements, query, 6)
    )
    assert index.rebuilds_full == 2  # the burst cost exactly one rebuild


def test_k_beyond_k_max_falls_back_exactly(graph):
    rng = random.Random(4)
    index = TenIndex(graph, k_max=3)
    placements = place(rng, graph, range(12), index)
    query = random_location(graph, rng)
    answer = index.knn(query, 8)
    assert answer.used_fallback
    assert index.fallback_scans == 1
    assert_matches_oracle(
        entries_of(answer), oracle_knn(graph, placements, query, 8)
    )


def test_expiry_hides_stale_reports(graph):
    rng = random.Random(5)
    index = TenIndex(graph, k_max=8, t_delta=10.0)
    stale = place(rng, graph, range(5), index, t=1.0)
    fresh = place(rng, graph, range(100, 110), index, t=20.0)
    query = random_location(graph, rng)
    # at t=25 the t=1 reports are older than t_delta: invisible
    got = entries_of(index.knn(query, 6, t_now=25.0))
    assert_matches_oracle(got, oracle_knn(graph, fresh, query, 6))
    assert not {obj for obj, _ in got} & set(stale)


def test_expiry_mid_lists_forces_rebuild(graph):
    rng = random.Random(6)
    index = TenIndex(graph, k_max=8, t_delta=10.0)
    placements = place(rng, graph, range(8), index, t=1.0)
    index.knn(random_location(graph, rng), 4, t_now=2.0)
    assert index.rebuilds_full == 1
    assert not index.needs_rebuild(t_now=5.0)
    # past the oldest report's horizon the truncated lists go stale
    assert index.needs_rebuild(t_now=11.5)
    index.knn(random_location(graph, rng), 4, t_now=11.5)
    assert index.rebuilds_full == 2
    assert entries_of(index.knn(random_location(graph, rng), 4, t_now=11.5)) == []
    del placements


def test_remove_object_and_resync(graph):
    rng = random.Random(7)
    index = TenIndex(graph, k_max=8)
    placements = place(rng, graph, range(10), index, t=1.0)
    index.knn(random_location(graph, rng), 4)
    index.remove_object(3, t=2.0)
    del placements[3]
    query = random_location(graph, rng)
    got = entries_of(index.knn(query, 8, t_now=2.0))
    assert_matches_oracle(got, oracle_knn(graph, placements, query, 8))
    assert 3 not in {obj for obj, _ in got}
    with pytest.raises(UnknownObjectError):
        index.remove_object(777, t=2.0)

    rows = [
        (obj, loc.edge_id, loc.offset, 2.0) for obj, loc in placements.items()
    ]
    revived = TenIndex(graph, k_max=8)
    revived.resync(rows, t=2.0)
    assert entries_of(revived.knn(query, 8, t_now=2.0)) == got


def test_constructor_and_ingest_guards(graph):
    with pytest.raises(QueryError):
        TenIndex(graph, k_max=0)
    index = TenIndex(graph, k_max=4)
    with pytest.raises(QueryError):
        index.ingest(Message(1, None, None, 1.0))  # a removal marker
