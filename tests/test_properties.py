"""Cross-module invariants: properties that tie the whole system together.

1. **Tuning invariance** — delta_b, eta, rho and the SDist backend tune
   *performance*; answers must be bit-identical across any setting.
2. **Ingest-order invariance** — messages of different objects commute:
   any interleaving with the same timestamps yields the same answers.
3. **Snapshot invariance** — save/load never changes an answer, for any
   configuration.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.persistence import load_index, save_index
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

_GRAPH = grid_road_network(7, 7, seed=33)


def _messages(rng, objects=15, rounds=4):
    msgs = []
    t = 0.0
    for obj in range(objects):
        t += 0.01
        e = rng.randrange(_GRAPH.num_edges)
        msgs.append(Message(obj, e, rng.uniform(0, _GRAPH.edge(e).weight), t))
    for _ in range(rounds):
        for obj in rng.sample(range(objects), objects // 2):
            t += 0.01
            e = rng.randrange(_GRAPH.num_edges)
            msgs.append(Message(obj, e, rng.uniform(0, _GRAPH.edge(e).weight), t))
    return msgs, t


def _answers(index, rng, t, queries=4):
    out = []
    for _ in range(queries):
        e = rng.randrange(_GRAPH.num_edges)
        q = NetworkLocation(e, rng.uniform(0, _GRAPH.edge(e).weight))
        out.append(
            [round(d, 9) for d in index.knn(q, 5, t_now=t).distances()]
        )
    return out


@settings(max_examples=8, deadline=None)
@given(
    st.integers(0, 10**6),
    st.sampled_from((2, 8, 64)),
    st.integers(3, 5),
    st.floats(1.3, 3.0),
    st.sampled_from(("lockstep", "vectorized")),
)
def test_answers_invariant_to_tuning(seed, delta_b, eta, rho, backend):
    rng = random.Random(seed)
    msgs, t = _messages(rng)
    tuned = GGridIndex(
        _GRAPH,
        GGridConfig(delta_b=delta_b, eta=eta, rho=rho, sdist_backend=backend),
    )
    reference = GGridIndex(_GRAPH, GGridConfig())
    for m in msgs:
        tuned.ingest(m)
        reference.ingest(m)
    rng_a, rng_b = random.Random(seed + 1), random.Random(seed + 1)
    assert _answers(tuned, rng_a, t) == _answers(reference, rng_b, t)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10**6))
def test_answers_invariant_to_ingest_interleaving(seed):
    rng = random.Random(seed)
    msgs, t = _messages(rng)
    shuffled = list(msgs)
    random.Random(seed + 7).shuffle(shuffled)
    # per-object order must stay chronological (the server receives each
    # object's stream in order); cross-object interleaving is arbitrary
    per_object: dict[int, list[Message]] = {}
    for m in msgs:
        per_object.setdefault(m.obj, []).append(m)
    rebuilt: list[Message] = []
    cursors = {obj: 0 for obj in per_object}
    for m in shuffled:
        queue = per_object[m.obj]
        rebuilt.append(queue[cursors[m.obj]])
        cursors[m.obj] += 1

    a = GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=4))
    b = GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=4))
    for m in msgs:
        a.ingest(m)
    for m in rebuilt:
        b.ingest(m)
    rng_a, rng_b = random.Random(seed + 2), random.Random(seed + 2)
    assert _answers(a, rng_a, t) == _answers(b, rng_b, t)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10**6), st.sampled_from((4, 32)), st.integers(3, 5))
def test_answers_invariant_to_snapshot(seed, delta_b, eta):
    import os
    import tempfile

    rng = random.Random(seed)
    msgs, t = _messages(rng)
    index = GGridIndex(_GRAPH, GGridConfig(delta_b=delta_b, eta=eta))
    for m in msgs:
        index.ingest(m)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.json")
        restored = load_index(save_index(index, path))
    rng_a, rng_b = random.Random(seed + 3), random.Random(seed + 3)
    assert _answers(index, rng_a, t) == _answers(restored, rng_b, t)
