"""Unit tests for the brute-force oracle index."""

import pytest

from repro.baselines.naive import NaiveKnnIndex
from repro.core.messages import Message
from repro.errors import QueryError
from repro.roadnet.location import NetworkLocation


def test_ingest_and_query(line_graph):
    ix = NaiveKnnIndex(line_graph)
    ix.ingest(Message(1, 0, 0.5, 1.0))
    edge_23 = next(e for e in line_graph.edges() if e.source == 2 and e.dest == 3)
    ix.ingest(Message(2, edge_23.id, 0.5, 1.0))
    answer = ix.knn(NetworkLocation(0, 0.0), k=2, t_now=1.0)
    assert answer.objects() == [1, 2]
    assert answer.distances() == pytest.approx([0.5, 2.5])


def test_latest_update_wins(line_graph):
    ix = NaiveKnnIndex(line_graph)
    ix.ingest(Message(1, 0, 0.1, 1.0))
    ix.ingest(Message(1, 0, 0.9, 2.0))
    answer = ix.knn(NetworkLocation(0, 0.0), k=1)
    assert answer.distances() == pytest.approx([0.9])


def test_rejects_markers_and_bad_k(line_graph):
    ix = NaiveKnnIndex(line_graph)
    with pytest.raises(QueryError):
        ix.ingest(Message(1, None, None, 1.0))
    with pytest.raises(QueryError):
        ix.knn(NetworkLocation(0, 0.0), k=0)


def test_fewer_objects_than_k(line_graph):
    ix = NaiveKnnIndex(line_graph)
    ix.ingest(Message(1, 0, 0.5, 1.0))
    assert len(ix.knn(NetworkLocation(0, 0.0), k=5).entries) == 1


def test_reset_objects(line_graph):
    ix = NaiveKnnIndex(line_graph)
    ix.ingest(Message(1, 0, 0.5, 1.0))
    ix.reset_objects()
    assert ix.knn(NetworkLocation(0, 0.0), k=1).entries == []
    assert ix.update_touches == 0
