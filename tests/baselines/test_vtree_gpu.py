"""Unit tests for the GPU-resident V-Tree variant."""

import random

import pytest

from repro.baselines.naive import NaiveKnnIndex
from repro.baselines.vtree_gpu import VTreeGpuIndex
from repro.core.messages import Message
from repro.errors import DeviceMemoryError
from repro.roadnet.location import NetworkLocation
from repro.simgpu.device import CostModel, SimGpu


def test_matches_oracle(medium_graph):
    rng = random.Random(1)
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    nv = NaiveKnnIndex(medium_graph)
    for obj in range(30):
        e = rng.randrange(medium_graph.num_edges)
        m = Message(obj, e, rng.uniform(0, medium_graph.edge(e).weight), 1.0)
        vg.ingest(m)
        nv.ingest(m)
    for _ in range(10):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        got = vg.knn(q, 5, t_now=1.0).distances()
        want = nv.knn(q, 5, t_now=1.0).distances()
        assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_index_shipped_to_device(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    assert vg.gpu.stats.bytes_h2d >= vg.inner.size_bytes()["matrices"]
    assert "vtree.index" in vg.gpu.memory


def test_updates_batched_per_warp(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    launches_before = vg.gpu.stats.kernel_launches
    for i in range(31):
        vg.ingest(Message(i, 0, 0.1, float(i)))
    assert vg.gpu.stats.kernel_launches == launches_before  # batch not full
    vg.ingest(Message(31, 0, 0.1, 31.0))
    assert vg.gpu.stats.kernel_launches == launches_before + 1


def test_query_flushes_pending(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    vg.ingest(Message(1, 0, 0.1, 1.0))  # pending, not yet applied
    answer = vg.knn(NetworkLocation(0, 0.0), k=1, t_now=1.0)
    assert answer.entries[0].obj == 1  # flush made it visible


def test_index_too_big_for_device_raises(medium_graph):
    tiny = SimGpu(CostModel(device_memory_bytes=64))
    with pytest.raises(DeviceMemoryError):
        VTreeGpuIndex(medium_graph, leaf_size=20, seed=1, gpu=tiny)


def test_no_cpu_touches_reported(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    for i in range(40):
        vg.ingest(Message(i, 0, 0.1, float(i)))
    assert vg.update_touches == 0  # work shows up as GPU time instead
    assert vg.gpu.stats.gpu_time_s > 0


def test_size_includes_gpu_copy(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    sizes = vg.size_bytes()
    assert sizes["gpu"] == sizes["matrices"]
    assert sizes["total"] == sizes["cpu"] + sizes["gpu"]


def test_reset_objects(medium_graph):
    vg = VTreeGpuIndex(medium_graph, leaf_size=20, seed=1)
    vg.ingest(Message(1, 0, 0.1, 1.0))
    vg.reset_objects()
    assert vg.knn(NetworkLocation(0, 0.0), k=1).entries == []
