"""Unit and property tests for the V-Tree baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveKnnIndex
from repro.baselines.vtree import VTreeIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation


def _scatter(graph, indexes, rng, objects, rounds):
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        m = Message(obj, e, rng.uniform(0, graph.edge(e).weight), 1.0)
        for ix in indexes:
            ix.ingest(m)
    t = 1.0
    for _ in range(rounds):
        t += 1.0
        for obj in rng.sample(range(objects), max(1, objects // 3)):
            e = rng.randrange(graph.num_edges)
            m = Message(obj, e, rng.uniform(0, graph.edge(e).weight), t)
            for ix in indexes:
                ix.ingest(m)
    return t


def test_matches_oracle(medium_graph):
    rng = random.Random(1)
    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    nv = NaiveKnnIndex(medium_graph)
    t = _scatter(medium_graph, (vt, nv), rng, objects=40, rounds=4)
    for _ in range(20):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        for k in (1, 5, 12):
            got = vt.knn(q, k, t_now=t).distances()
            want = nv.knn(q, k, t_now=t).distances()
            assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_matches_oracle_property(seed):
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 9)
    vt = VTreeIndex(graph, leaf_size=8 + seed % 20, seed=seed % 5)
    nv = NaiveKnnIndex(graph)
    t = _scatter(graph, (vt, nv), rng, objects=15, rounds=3)
    e = rng.randrange(graph.num_edges)
    q = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
    k = rng.choice((1, 4, 8))
    got = vt.knn(q, k, t_now=t).distances()
    want = nv.knn(q, k, t_now=t).distances()
    assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_pairwise_matrices_match_restricted_dijkstra(medium_graph):
    from repro.roadnet.dijkstra import multi_source_dijkstra

    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    leaf = vt.leaves[0]
    sub, mapping = medium_graph.subgraph(leaf.vertices)
    u = leaf.vertices[0]
    dist = multi_source_dijkstra(sub, {mapping[u]: 0.0})
    inverse = {new: old for old, new in mapping.items()}
    want = {inverse[v]: d for v, d in dist.items()}
    assert vt.pair_dist[leaf.id][u] == pytest.approx(want)


def test_eager_updates_touch_many_entries(medium_graph):
    """Each message triggers O(|borders|) index work — the eager cost."""
    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    vt.ingest(Message(1, 0, 0.1, 1.0))
    first = vt.update_touches
    vt.ingest(Message(1, 0, 0.2, 2.0))  # same leaf, still recomputes
    assert vt.update_touches - first >= 2
    assert first > 3  # far more than G-Grid's lazy 2-3 touches


def test_object_vector_kept_current(medium_graph):
    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    vt.ingest(Message(1, 0, 0.1, 1.0))
    leaf_id, vec1 = vt.object_vectors[1]
    vt.ingest(Message(1, 0, 0.4, 2.0))
    _, vec2 = vt.object_vectors[1]
    for border in vec1:
        assert vec2[border] == pytest.approx(vec1[border] + 0.3)


def test_cross_leaf_move_updates_counts(medium_graph):
    vt = VTreeIndex(medium_graph, leaf_size=10, seed=1)
    edges = list(medium_graph.edges())
    e1 = edges[0]
    leaf1 = vt.tree.leaf_node_of_vertex(e1.source)
    e2 = next(
        e for e in edges if vt.tree.leaf_node_of_vertex(e.source).id != leaf1.id
    )
    vt.ingest(Message(1, e1.id, 0.1, 1.0))
    assert vt.node_counts[leaf1.id] == 1
    vt.ingest(Message(1, e2.id, 0.1, 2.0))
    assert vt.node_counts[leaf1.id] == 0
    assert 1 not in vt.leaf_objects[leaf1.id]
    assert vt.node_counts[vt.tree.root.id] == 1


def test_index_size_dominated_by_matrices(medium_graph):
    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    sizes = vt.size_bytes()
    assert sizes["matrices"] > sizes["overlay"]
    assert sizes["total"] >= sizes["matrices"]


def test_reset_objects_keeps_matrices(medium_graph):
    vt = VTreeIndex(medium_graph, leaf_size=20, seed=1)
    vt.ingest(Message(1, 0, 0.1, 1.0))
    matrices = vt.size_bytes()["matrices"]
    vt.reset_objects()
    assert vt.locations == {}
    assert vt.size_bytes()["matrices"] == matrices
    # still answers (with no objects)
    assert vt.knn(NetworkLocation(0, 0.0), k=1).entries == []
