"""Unit and property tests for the ROAD baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveKnnIndex
from repro.baselines.road import RoadIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation


def _scatter(graph, indexes, rng, objects, rounds):
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        m = Message(obj, e, rng.uniform(0, graph.edge(e).weight), 1.0)
        for ix in indexes:
            ix.ingest(m)
    t = 1.0
    for _ in range(rounds):
        t += 1.0
        for obj in rng.sample(range(objects), max(1, objects // 3)):
            e = rng.randrange(graph.num_edges)
            m = Message(obj, e, rng.uniform(0, graph.edge(e).weight), t)
            for ix in indexes:
                ix.ingest(m)
    return t


def test_matches_oracle(medium_graph):
    rng = random.Random(2)
    rd = RoadIndex(medium_graph, leaf_size=20, seed=1)
    nv = NaiveKnnIndex(medium_graph)
    t = _scatter(medium_graph, (rd, nv), rng, objects=40, rounds=4)
    for _ in range(20):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        for k in (1, 5, 12):
            got = rd.knn(q, k, t_now=t).distances()
            want = nv.knn(q, k, t_now=t).distances()
            assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_matches_oracle_property(seed):
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 9)
    rd = RoadIndex(graph, leaf_size=8 + seed % 16, seed=seed % 5)
    nv = NaiveKnnIndex(graph)
    t = _scatter(graph, (rd, nv), rng, objects=12, rounds=3)
    e = rng.randrange(graph.num_edges)
    q = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
    k = rng.choice((1, 4, 8))
    got = rd.knn(q, k, t_now=t).distances()
    want = nv.knn(q, k, t_now=t).distances()
    assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_matches_oracle_with_sparse_objects(medium_graph):
    """Sparse objects leave most Rnets empty, exercising the shortcut
    fly-over path hard."""
    rng = random.Random(3)
    rd = RoadIndex(medium_graph, leaf_size=12, seed=1)
    nv = NaiveKnnIndex(medium_graph)
    t = _scatter(medium_graph, (rd, nv), rng, objects=3, rounds=2)
    for _ in range(15):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        got = rd.knn(q, 2, t_now=t).distances()
        want = nv.knn(q, 2, t_now=t).distances()
        assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_shortcuts_match_restricted_dijkstra(medium_graph):
    from repro.roadnet.dijkstra import multi_source_dijkstra

    rd = RoadIndex(medium_graph, leaf_size=20, seed=1)
    node_id, table = next(iter(rd.shortcuts.items()))
    node = rd.tree.nodes[node_id]
    sub, mapping = medium_graph.subgraph(node.vertices)
    border = node.borders[0]
    dist = multi_source_dijkstra(sub, {mapping[border]: 0.0})
    inverse = {new: old for old, new in mapping.items()}
    want = {
        inverse[v]: d
        for v, d in dist.items()
        if inverse[v] in set(node.borders) and inverse[v] != border
    }
    assert dict(table[border]) == pytest.approx(want)


def test_empty_rnets_reduce_settled_vertices(medium_graph):
    """With no objects in a half of the network, the expansion should
    settle fewer vertices than plain Dijkstra would."""
    rng = random.Random(4)
    rd = RoadIndex(medium_graph, leaf_size=12, seed=1)
    # put all objects near vertex 0's edges
    near = [e.id for e in medium_graph.out_edges(0)]
    for obj, e in enumerate(near):
        rd.ingest(Message(obj, e, 0.1, 1.0))
    answer = rd.knn(NetworkLocation(near[0], 0.0), k=len(near), t_now=1.0)
    assert answer.refine_settled < medium_graph.num_vertices


def test_association_directory_counts(medium_graph):
    rd = RoadIndex(medium_graph, leaf_size=12, seed=1)
    rd.ingest(Message(1, 0, 0.1, 1.0))
    leaf = rd.tree.leaf_node_of_vertex(medium_graph.edge(0).source)
    for node in rd.tree.path_to_root(leaf):
        assert rd.node_counts[node.id] == 1
        assert rd.node_objects[node.id] == {1}


def test_updates_touch_every_level(medium_graph):
    rd = RoadIndex(medium_graph, leaf_size=12, seed=1)
    rd.ingest(Message(1, 0, 0.1, 1.0))
    first = rd.update_touches
    rd.ingest(Message(1, 0, 0.2, 2.0))  # same vertex: AD re-validation
    assert rd.update_touches > first
    assert first >= rd.tree.depth  # touched each hierarchy level


def test_reset_objects(medium_graph):
    rd = RoadIndex(medium_graph, leaf_size=12, seed=1)
    rd.ingest(Message(1, 0, 0.1, 1.0))
    rd.reset_objects()
    assert rd.locations == {}
    assert all(c == 0 for c in rd.node_counts)
    assert rd.knn(NetworkLocation(0, 0.0), k=1).entries == []
