"""Unit tests for the binary partition tree (V-Tree / ROAD substrate)."""

import pytest

from repro.errors import PartitionError
from repro.partition.tree import PartitionTree


def test_leaves_partition_vertices(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    seen = sorted(v for leaf in tree.leaves() for v in leaf.vertices)
    assert seen == list(range(small_graph.num_vertices))


def test_leaf_size_respected(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    assert all(len(leaf.vertices) <= 10 for leaf in tree.leaves())


def test_root_covers_everything(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    assert len(tree.root.vertices) == small_graph.num_vertices
    assert tree.root.leaf_lo == 0 and tree.root.leaf_hi == tree.num_leaves


def test_leaf_of_vertex_consistent(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    for vid in range(small_graph.num_vertices):
        leaf = tree.leaf_node_of_vertex(vid)
        assert vid in leaf.vertices
        assert tree.contains(leaf, vid)


def test_contains_via_leaf_interval(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    root_left = tree.nodes[tree.root.children[0]]
    inside = set(root_left.vertices)
    for vid in range(small_graph.num_vertices):
        assert tree.contains(root_left, vid) == (vid in inside)


def test_borders_have_crossing_edges(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    for leaf in tree.leaves():
        inside = set(leaf.vertices)
        for b in leaf.borders:
            crossing = any(
                e.dest not in inside for e in small_graph.out_edges(b)
            ) or any(e.source not in inside for e in small_graph.in_edges(b))
            assert crossing


def test_non_borders_have_no_crossing_edges(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    leaf = tree.leaves()[0]
    inside = set(leaf.vertices)
    interior = inside - set(leaf.borders)
    for v in interior:
        assert all(e.dest in inside for e in small_graph.out_edges(v))
        assert all(e.source in inside for e in small_graph.in_edges(v))


def test_root_has_no_borders(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    assert tree.root.borders == []


def test_path_to_root(small_graph):
    tree = PartitionTree(small_graph, leaf_size=10, seed=1)
    leaf = tree.leaves()[0]
    path = tree.path_to_root(leaf)
    assert path[0] is leaf and path[-1] is tree.root
    assert all(tree.nodes[path[i].parent] is path[i + 1] for i in range(len(path) - 1))


def test_single_leaf_tree(line_graph):
    tree = PartitionTree(line_graph, leaf_size=100, seed=1)
    assert tree.num_leaves == 1
    assert tree.root.is_leaf


def test_invalid_leaf_size(line_graph):
    with pytest.raises(PartitionError):
        PartitionTree(line_graph, leaf_size=0)
