"""Unit tests for heavy-edge-matching coarsening."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.coarsen import PartGraph, coarsen, project
from repro.roadnet.generators import grid_road_network


def _work(seed: int = 0, rows: int = 6, cols: int = 6) -> PartGraph:
    return PartGraph.from_road_network(grid_road_network(rows, cols, seed=seed))


def test_from_road_network_symmetric():
    g = _work()
    for u in range(g.num_vertices):
        for v, w in g.adj[u].items():
            assert g.adj[v][u] == w


def test_from_road_network_counts_directed_edges():
    graph = grid_road_network(4, 4, seed=1)
    work = PartGraph.from_road_network(graph)
    total = sum(sum(adj.values()) for adj in work.adj)
    assert total == 2 * graph.num_edges  # each directed edge counted at u and v


def test_coarsen_preserves_total_vertex_weight():
    g = _work()
    level = coarsen(g, random.Random(0))
    assert level.graph.total_weight == g.total_weight


def test_coarsen_shrinks():
    g = _work()
    level = coarsen(g, random.Random(0))
    assert level.graph.num_vertices < g.num_vertices


def test_coarse_vertices_merge_at_most_two():
    g = _work()
    level = coarsen(g, random.Random(1))
    assert all(w <= 2 for w in level.graph.vertex_weight)


def test_fine_to_coarse_total_mapping():
    g = _work()
    level = coarsen(g, random.Random(2))
    assert len(level.fine_to_coarse) == g.num_vertices
    assert set(level.fine_to_coarse) == set(range(level.graph.num_vertices))


def test_coarse_graph_has_no_self_edges():
    g = _work()
    level = coarsen(g, random.Random(3))
    for u, adj in enumerate(level.graph.adj):
        assert u not in adj


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_coarsen_preserves_cut_structure(seed):
    """Property: a bisection's cut on the coarse graph equals the cut of
    its projection on the fine graph."""
    rng = random.Random(seed)
    g = _work(seed=seed % 50, rows=5, cols=5)
    level = coarsen(g, rng)
    coarse_side = [rng.randint(0, 1) for _ in range(level.graph.num_vertices)]
    fine_side = project(level, coarse_side)
    assert level.graph.cut_weight(coarse_side) == g.cut_weight(fine_side)


def test_project_maps_every_vertex():
    g = _work()
    level = coarsen(g, random.Random(4))
    side = [0] * level.graph.num_vertices
    side[0] = 1
    fine = project(level, side)
    assert len(fine) == g.num_vertices
    assert set(fine) <= {0, 1}
