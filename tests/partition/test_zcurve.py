"""Unit tests for Morton (Z-order) encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.partition.zcurve import z_decode, z_encode, z_neighbors


def test_paper_example():
    """The paper's worked example: (x=3, y=4) -> 37."""
    assert z_encode(3, 4, 3) == 37


def test_origin_is_zero():
    assert z_encode(0, 0, 4) == 0


def test_decode_paper_example():
    assert z_decode(37, 3) == (3, 4)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255))
def test_encode_decode_roundtrip(x, y):
    assert z_decode(z_encode(x, y, 8), 8) == (x, y)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_decode_encode_roundtrip(z):
    x, y = z_decode(z, 8)
    assert z_encode(x, y, 8) == z


def test_encode_is_bijection_small_grid():
    values = {z_encode(x, y, 2) for x in range(4) for y in range(4)}
    assert values == set(range(16))


def test_locality_within_quadrant():
    """All cells of one quadrant occupy one contiguous Z range."""
    zs = sorted(z_encode(x, y, 2) for x in range(2) for y in range(2))
    assert zs == [0, 1, 2, 3]


def test_out_of_range_rejected():
    with pytest.raises(ConfigError):
        z_encode(4, 0, 2)
    with pytest.raises(ConfigError):
        z_encode(0, -1, 2)
    with pytest.raises(ConfigError):
        z_decode(16, 2)


def test_negative_bits_rejected():
    with pytest.raises(ConfigError):
        z_encode(0, 0, -1)


def test_neighbors_interior_cell():
    nbrs = z_neighbors(z_encode(1, 1, 2), 2)
    assert len(nbrs) == 8
    coords = {z_decode(z, 2) for z in nbrs}
    assert (0, 0) in coords and (2, 2) in coords and (1, 1) not in coords


def test_neighbors_corner_cell():
    nbrs = z_neighbors(z_encode(0, 0, 2), 2)
    assert len(nbrs) == 3


def test_neighbors_border_edge_cell():
    """A non-corner cell on the grid border has exactly 5 neighbours."""
    nbrs = z_neighbors(z_encode(1, 0, 2), 2)  # bottom edge, not a corner
    assert len(nbrs) == 5
    coords = {z_decode(z, 2) for z in nbrs}
    assert coords == {(0, 0), (2, 0), (0, 1), (1, 1), (2, 1)}


def test_zero_bits_single_cell():
    """bits=0 is a 1x1 grid: one cell, no neighbours."""
    assert z_encode(0, 0, 0) == 0
    assert z_decode(0, 0) == (0, 0)
    assert z_neighbors(0, 0) == []


# ----------------------------------------------------------------------
# property tests over varied grid sizes
# ----------------------------------------------------------------------
coordinate_grids = st.integers(1, 6).flatmap(
    lambda bits: st.tuples(
        st.just(bits),
        st.integers(0, (1 << bits) - 1),
        st.integers(0, (1 << bits) - 1),
    )
)


@settings(max_examples=60, deadline=None)
@given(coordinate_grids)
def test_roundtrip_at_any_bits(case):
    bits, x, y = case
    z = z_encode(x, y, bits)
    assert 0 <= z < 1 << (2 * bits)
    assert z_decode(z, bits) == (x, y)


@settings(max_examples=60, deadline=None)
@given(coordinate_grids)
def test_neighbors_are_in_range_distinct_and_adjacent(case):
    bits, x, y = case
    z = z_encode(x, y, bits)
    nbrs = z_neighbors(z, bits)
    assert len(nbrs) == len(set(nbrs))
    assert z not in nbrs
    for n in nbrs:
        nx, ny = z_decode(n, bits)
        # 8-connectivity: Chebyshev distance exactly 1
        assert max(abs(nx - x), abs(ny - y)) == 1


@settings(max_examples=60, deadline=None)
@given(coordinate_grids)
def test_neighbor_count_follows_border_position(case):
    """3 at a corner, 5 on an edge, 8 in the interior."""
    bits, x, y = case
    side = 1 << bits
    on_border = sum(c in (0, side - 1) for c in (x, y))
    want = {0: 8, 1: 5, 2: 3}[on_border] if side > 1 else 0
    assert len(z_neighbors(z_encode(x, y, bits), bits)) == want


@settings(max_examples=40, deadline=None)
@given(coordinate_grids)
def test_neighbor_relation_is_symmetric(case):
    bits, x, y = case
    z = z_encode(x, y, bits)
    for n in z_neighbors(z, bits):
        assert z in z_neighbors(n, bits)
