"""Unit tests for Morton (Z-order) encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.partition.zcurve import z_decode, z_encode, z_neighbors


def test_paper_example():
    """The paper's worked example: (x=3, y=4) -> 37."""
    assert z_encode(3, 4, 3) == 37


def test_origin_is_zero():
    assert z_encode(0, 0, 4) == 0


def test_decode_paper_example():
    assert z_decode(37, 3) == (3, 4)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255))
def test_encode_decode_roundtrip(x, y):
    assert z_decode(z_encode(x, y, 8), 8) == (x, y)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_decode_encode_roundtrip(z):
    x, y = z_decode(z, 8)
    assert z_encode(x, y, 8) == z


def test_encode_is_bijection_small_grid():
    values = {z_encode(x, y, 2) for x in range(4) for y in range(4)}
    assert values == set(range(16))


def test_locality_within_quadrant():
    """All cells of one quadrant occupy one contiguous Z range."""
    zs = sorted(z_encode(x, y, 2) for x in range(2) for y in range(2))
    assert zs == [0, 1, 2, 3]


def test_out_of_range_rejected():
    with pytest.raises(ConfigError):
        z_encode(4, 0, 2)
    with pytest.raises(ConfigError):
        z_encode(0, -1, 2)
    with pytest.raises(ConfigError):
        z_decode(16, 2)


def test_negative_bits_rejected():
    with pytest.raises(ConfigError):
        z_encode(0, 0, -1)


def test_neighbors_interior_cell():
    nbrs = z_neighbors(z_encode(1, 1, 2), 2)
    assert len(nbrs) == 8
    coords = {z_decode(z, 2) for z in nbrs}
    assert (0, 0) in coords and (2, 2) in coords and (1, 1) not in coords


def test_neighbors_corner_cell():
    nbrs = z_neighbors(z_encode(0, 0, 2), 2)
    assert len(nbrs) == 3
