"""Unit tests for KL/FM refinement and exact rebalancing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.coarsen import PartGraph
from repro.partition.kl import rebalance, refine
from repro.roadnet.generators import grid_road_network


def _work(seed: int = 0) -> PartGraph:
    return PartGraph.from_road_network(grid_road_network(6, 6, seed=seed))


def _random_side(n: int, rng: random.Random) -> list[int]:
    side = [rng.randint(0, 1) for _ in range(n)]
    side[0] = 0
    side[-1] = 1
    return side


def test_refine_never_increases_cut():
    g = _work()
    rng = random.Random(1)
    side = _random_side(g.num_vertices, rng)
    before = g.cut_weight(side)
    refine(g.adj, g.vertex_weight, side, (g.total_weight, g.total_weight))
    assert g.cut_weight(side) <= before


def test_refine_respects_weight_budget():
    g = _work()
    rng = random.Random(2)
    side = _random_side(g.num_vertices, rng)
    weight0 = sum(g.vertex_weight[u] for u in range(g.num_vertices) if side[u] == 0)
    budget = (weight0 + 2, g.total_weight - weight0 + 2)
    refine(g.adj, g.vertex_weight, side, budget)
    w0 = sum(g.vertex_weight[u] for u in range(g.num_vertices) if side[u] == 0)
    assert w0 <= budget[0]
    assert g.total_weight - w0 <= budget[1]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 500))
def test_refine_cut_property(seed):
    g = _work(seed=seed % 20)
    rng = random.Random(seed)
    side = _random_side(g.num_vertices, rng)
    before = g.cut_weight(side)
    refine(g.adj, g.vertex_weight, side, (g.total_weight, g.total_weight))
    assert g.cut_weight(side) <= before


def test_rebalance_hits_exact_target():
    g = _work()
    rng = random.Random(3)
    side = _random_side(g.num_vertices, rng)
    target = g.num_vertices // 2
    rebalance(g.adj, g.vertex_weight, side, float(target))
    assert side.count(0) == target


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 500), st.integers(1, 35))
def test_rebalance_any_target(seed, target):
    g = _work(seed=seed % 20)
    rng = random.Random(seed)
    side = _random_side(g.num_vertices, rng)
    rebalance(g.adj, g.vertex_weight, side, float(target))
    assert side.count(0) == target


def test_rebalance_noop_when_balanced():
    g = _work()
    side = [0] * (g.num_vertices // 2) + [1] * (g.num_vertices - g.num_vertices // 2)
    before = list(side)
    rebalance(g.adj, g.vertex_weight, side, float(g.num_vertices // 2))
    assert side == before
