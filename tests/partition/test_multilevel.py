"""Unit tests for multilevel bisection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.coarsen import PartGraph
from repro.partition.multilevel import bisect_graph
from repro.roadnet.generators import grid_road_network


def _work(rows=8, cols=8, seed=0) -> PartGraph:
    return PartGraph.from_road_network(grid_road_network(rows, cols, seed=seed))


def test_bisection_exact_half():
    g = _work()
    side = bisect_graph(g, seed=1)
    assert side.count(0) == g.num_vertices // 2


def test_bisection_custom_target():
    g = _work()
    side = bisect_graph(g, target_weight0=10, seed=1)
    assert side.count(0) == 10


def test_bisection_deterministic():
    g = _work()
    assert bisect_graph(g, seed=5) == bisect_graph(g, seed=5)


def test_bisection_cut_is_reasonable():
    """A balanced grid bisection should cut far fewer edges than random."""
    g = _work(10, 10, seed=2)
    side = bisect_graph(g, seed=3)
    random_cut = g.cut_weight([i % 2 for i in range(g.num_vertices)])
    assert g.cut_weight(side) < random_cut / 2


def test_invalid_target_raises():
    g = _work(4, 4)
    with pytest.raises(PartitionError):
        bisect_graph(g, target_weight0=-1)
    with pytest.raises(PartitionError):
        bisect_graph(g, target_weight0=g.total_weight + 1)


def test_target_zero_and_full():
    g = _work(4, 4)
    assert bisect_graph(g, target_weight0=0).count(0) == 0
    n = g.num_vertices
    assert bisect_graph(g, target_weight0=n).count(0) == n


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 200))
def test_bisection_exactness_property(seed):
    g = _work(rows=5 + seed % 4, cols=5, seed=seed % 10)
    target = 1 + seed % (g.num_vertices - 1)
    side = bisect_graph(g, target_weight0=target, seed=seed)
    assert side.count(0) == target


def test_small_graph_bisection():
    """Graphs below the coarsening threshold still bisect exactly."""
    g = _work(2, 3)
    side = bisect_graph(g, seed=0)
    assert side.count(0) == 3
