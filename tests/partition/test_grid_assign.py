"""Unit tests for the grid cell assignment (Section III-A)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.grid_assign import assign_cells, psi_for
from repro.roadnet.generators import grid_road_network


def test_psi_formula_matches_paper():
    # psi = ceil(0.5 * log2(|V| / delta_c))
    assert psi_for(64, 1) == 3
    assert psi_for(100, 3) == math.ceil(0.5 * math.log2(100 / 3))
    assert psi_for(3, 3) == 0  # everything fits one cell


def test_psi_rejects_bad_capacity():
    with pytest.raises(PartitionError):
        psi_for(10, 0)


def test_every_vertex_in_exactly_one_cell(small_graph):
    a = assign_cells(small_graph, 3, seed=1)
    seen = [vid for cell in a.vertices_of_cell for vid in cell]
    assert sorted(seen) == list(range(small_graph.num_vertices))
    for vid in range(small_graph.num_vertices):
        assert vid in a.vertices_of_cell[a.cell_of_vertex[vid]]


def test_capacity_respected(small_graph):
    a = assign_cells(small_graph, 3, seed=1)
    assert a.max_cell_size() <= 3


def test_grid_dimensions(small_graph):
    a = assign_cells(small_graph, 3, seed=1)
    assert a.num_cells == (1 << a.psi) ** 2
    assert len(a.vertices_of_cell) == a.num_cells


def test_single_cell_when_capacity_large(small_graph):
    a = assign_cells(small_graph, small_graph.num_vertices, seed=1)
    assert a.psi == 0
    assert a.num_cells == 1
    assert len(a.vertices_of_cell[0]) == small_graph.num_vertices


def test_deterministic(small_graph):
    a = assign_cells(small_graph, 3, seed=9)
    b = assign_cells(small_graph, 3, seed=9)
    assert a.cell_of_vertex == b.cell_of_vertex


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 8), st.integers(0, 50))
def test_capacity_property(capacity, seed):
    """Property: no cell ever exceeds delta_c, for any capacity/seed."""
    g = grid_road_network(6, 6, seed=seed % 10)
    a = assign_cells(g, capacity, seed=seed)
    assert a.max_cell_size() <= capacity
    assert sorted(v for cell in a.vertices_of_cell for v in cell) == list(
        range(g.num_vertices)
    )


def test_locality_cells_mostly_contiguous(small_graph):
    """Partitioning should keep most edges inside cells or between
    nearby cells — far better than a random assignment would."""
    a = assign_cells(small_graph, 8, seed=1)
    internal = sum(
        1
        for e in small_graph.edges()
        if a.cell_of_vertex[e.source] == a.cell_of_vertex[e.dest]
    )
    assert internal / small_graph.num_edges > 0.3
