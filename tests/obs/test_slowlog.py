"""Unit tests for the top-N slow-query log."""

import pytest

from repro.errors import ConfigError
from repro.obs.slowlog import SlowQueryLog

pytestmark = pytest.mark.obs


def test_capacity_validation():
    with pytest.raises(ConfigError):
        SlowQueryLog(capacity=0)


def test_keeps_only_the_slowest_n():
    log = SlowQueryLog(capacity=3)
    for ms in (5.0, 1.0, 9.0, 2.0, 7.0, 3.0):
        log.record(ms)
    assert len(log) == 3
    assert [e.modeled_s for e in log.entries()] == [9.0, 7.0, 5.0]


def test_fast_query_rejected_without_allocation():
    log = SlowQueryLog(capacity=2)
    log.record(5.0)
    log.record(6.0)
    before = log.entries()
    log.record(0.001)  # faster than everything retained
    assert log.entries() == before


def test_record_keeps_phases_and_attrs():
    log = SlowQueryLog(capacity=2)
    log.record(
        0.5,
        wall_s=1.5,
        phases={"clean_cells": 0.4, "refine": 0.1},
        candidates=33,
        used_fallback=False,
    )
    (entry,) = log.entries()
    d = entry.as_dict()
    assert d["modeled_s"] == 0.5
    assert d["wall_s"] == 1.5
    assert d["phases"] == {"clean_cells": 0.4, "refine": 0.1}
    assert d["candidates"] == 33
    assert d["used_fallback"] is False


def test_as_dicts_slowest_first():
    log = SlowQueryLog(capacity=5)
    for ms in (0.1, 0.3, 0.2):
        log.record(ms)
    assert [d["modeled_s"] for d in log.as_dicts()] == [0.3, 0.2, 0.1]


def test_ties_are_kept_distinct():
    log = SlowQueryLog(capacity=3)
    for _ in range(3):
        log.record(1.0)
    assert len(log) == 3
    assert len({e.seq for e in log.entries()}) == 3


def test_worst_phase():
    log = SlowQueryLog(capacity=3)
    assert log.worst_phase() is None
    log.record(0.1, phases={"sdist": 0.09, "refine": 0.01})
    log.record(0.9, phases={"clean_cells": 0.8, "sdist": 0.1})
    assert log.worst_phase() == "clean_cells"  # of the slowest entry


def test_worst_phase_without_phase_split():
    log = SlowQueryLog()
    log.record(1.0)
    assert log.worst_phase() is None
