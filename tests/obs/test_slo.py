"""SLO engine: objectives, burn-rate windows, metric families, and the
ReplayReport surfacing — all scored over the deterministic modelled clock."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLO_POLICY,
    SloObjective,
    SloPolicy,
    SloTracker,
    classify_fanout,
)
from repro.server.metrics import QueryRecord, ReplayReport

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# objectives and policies
# ----------------------------------------------------------------------
class TestObjectiveValidation:
    def test_budget_is_one_minus_target(self):
        assert SloObjective(0.1, target=0.99).budget == pytest.approx(0.01)

    @pytest.mark.parametrize("threshold", [0.0, -1.0])
    def test_nonpositive_threshold_rejected(self, threshold):
        with pytest.raises(ConfigError):
            SloObjective(threshold)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_target_outside_open_interval_rejected(self, target):
        with pytest.raises(ConfigError):
            SloObjective(0.1, target=target)


class TestPolicy:
    def test_empty_policy_rejected(self):
        with pytest.raises(ConfigError):
            SloPolicy(objectives={})

    def test_empty_windows_rejected(self):
        with pytest.raises(ConfigError):
            SloPolicy(
                objectives={"point": SloObjective(0.1)}, windows_s=()
            )

    def test_unknown_class_raises(self):
        with pytest.raises(ConfigError, match="no SLO objective"):
            DEFAULT_SLO_POLICY.objective_for("batch")

    def test_default_covers_both_routing_shapes(self):
        assert DEFAULT_SLO_POLICY.objective_for("point").threshold_s < (
            DEFAULT_SLO_POLICY.objective_for("scatter").threshold_s
        )


def test_classify_fanout():
    assert classify_fanout(1) == "point"
    assert classify_fanout(2) == "scatter"
    assert classify_fanout(8) == "scatter"


# ----------------------------------------------------------------------
# the tracker
# ----------------------------------------------------------------------
def one_class_policy(threshold=0.1, target=0.9, windows=(10.0, 100.0)):
    return SloPolicy(
        objectives={"point": SloObjective(threshold, target=target)},
        windows_s=windows,
    )


class TestTracker:
    def test_breach_detection(self):
        tracker = SloTracker(one_class_policy())
        assert tracker.record("point", 0.05, now=0.0) is False
        assert tracker.record("point", 0.15, now=1.0) is True

    def test_attainment_is_cumulative(self):
        tracker = SloTracker(one_class_policy())
        for i in range(10):
            tracker.record("point", 0.2 if i == 0 else 0.01, now=float(i))
        assert tracker.attainment("point") == pytest.approx(0.9)

    def test_attainment_before_traffic_is_one(self):
        assert SloTracker(one_class_policy()).attainment("point") == 1.0

    def test_burn_rate_is_error_rate_over_budget(self):
        # 1 breach in 10 = 10% error rate; budget 10% -> burn exactly 1.0
        tracker = SloTracker(one_class_policy(target=0.9))
        for i in range(10):
            tracker.record("point", 0.2 if i == 0 else 0.01, now=float(i))
        assert tracker.burn_rate("point", 10.0) == pytest.approx(1.0)

    def test_short_window_forgets_what_long_window_remembers(self):
        # breaches at t=0..4, clean traffic at t=50..54: the 10s window
        # has rolled past the breaches, the 100s window still sees them
        tracker = SloTracker(one_class_policy(target=0.9))
        for i in range(5):
            tracker.record("point", 0.2, now=float(i))
        for i in range(5):
            tracker.record("point", 0.01, now=50.0 + i)
        assert tracker.burn_rate("point", 10.0) == 0.0
        assert tracker.burn_rate("point", 100.0) == pytest.approx(5.0)

    def test_unknown_window_raises(self):
        tracker = SloTracker(one_class_policy())
        tracker.record("point", 0.01, now=0.0)
        with pytest.raises(ConfigError, match="not in policy windows"):
            tracker.burn_rate("point", 42.0)

    def test_worst_trace_id_tracks_the_worst_breach(self):
        tracker = SloTracker(one_class_policy())
        tracker.record("point", 0.15, now=0.0, trace_id="aa")
        tracker.record("point", 0.30, now=1.0, trace_id="bb")
        tracker.record("point", 0.20, now=2.0, trace_id="cc")
        assert tracker.report()["point"]["worst_trace_id"] == "bb"

    def test_report_shape(self):
        tracker = SloTracker(one_class_policy(target=0.9))
        for i in range(10):
            tracker.record("point", 0.2 if i == 0 else 0.01, now=float(i))
        report = tracker.report()["point"]
        assert report["requests"] == 10
        assert report["breaches"] == 1
        assert report["attainment"] == pytest.approx(0.9)
        assert report["met"] is True  # 0.9 >= target 0.9
        assert report["budget_consumed"] == pytest.approx(1.0)
        assert set(report["burn_rates"]) == {"10s", "100s"}


class TestTrackerMetrics:
    def test_publishes_slo_families(self):
        registry = MetricsRegistry()
        tracker = SloTracker(one_class_policy(target=0.9), registry)
        for i in range(10):
            tracker.record("point", 0.2 if i == 0 else 0.01, now=float(i))
        text = registry.write_prometheus()
        assert 'repro_slo_requests_total{slo_class="point"} 10' in text
        assert 'repro_slo_breaches_total{slo_class="point"} 1' in text
        assert 'repro_slo_attainment_ratio{slo_class="point"} 0.9' in text
        assert 'repro_slo_latency_target_seconds{slo_class="point"} 0.1' in text
        assert (
            'repro_slo_error_budget_burn{slo_class="point",window="10s"}'
            in text
        )


# ----------------------------------------------------------------------
# ReplayReport surfacing
# ----------------------------------------------------------------------
def record(modeled_s, t, fanout=1, trace_id=None):
    return QueryRecord(
        modeled_s=modeled_s,
        wall_s=modeled_s,
        gpu_s=0.0,
        transfer_bytes=0,
        fanout=fanout,
        t=t,
        trace_id=trace_id,
    )


class TestReplayReportSlo:
    def test_classes_split_by_routing_shape(self):
        report = ReplayReport(index_name="test")
        report.query_records = [
            record(0.001, 0.0),
            record(0.001, 1.0, fanout=3),
        ]
        slo = report.slo()
        assert slo["point"]["requests"] == 1
        assert slo["scatter"]["requests"] == 1
        assert slo["point"]["met"] and slo["scatter"]["met"]

    def test_breach_carries_trace_id(self):
        report = ReplayReport(index_name="test")
        report.query_records = [record(10.0, 0.0, trace_id="deadbeef")]
        assert report.slo()["point"]["worst_trace_id"] == "deadbeef"

    def test_custom_policy_and_bad_policy(self):
        report = ReplayReport(index_name="test")
        report.query_records = [record(0.3, 0.0)]
        lax = SloPolicy(objectives={"point": SloObjective(1.0)})
        assert report.slo(lax)["point"]["breaches"] == 0
        assert report.slo()["point"]["breaches"] == 1
        with pytest.raises(ConfigError, match="SloPolicy"):
            report.slo(policy={"point": 1.0})

    def test_as_dict_embeds_slo(self):
        report = ReplayReport(index_name="test", n_queries=1)
        report.query_records = [record(0.001, 0.0)]
        assert report.as_dict()["slo"]["point"]["requests"] == 1
