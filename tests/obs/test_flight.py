"""Flight recorder: trace ring buffer, triggered dumps, slowlog linkage."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.flight import FlightRecorder
from repro.obs.hub import Observability
from repro.obs.tracing import Tracer

pytestmark = pytest.mark.obs


def make_trace(tracer, name, children=1):
    with tracer.span(name) as root:
        for i in range(children):
            with tracer.span(f"{name}.child{i}"):
                pass
    return root.trace_id_hex


@pytest.fixture
def wired():
    tracer = Tracer()
    recorder = FlightRecorder(capacity=3)
    tracer.on_trace_complete = recorder.on_trace
    return tracer, recorder


class TestRing:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)
        with pytest.raises(ConfigError):
            FlightRecorder(max_dumps=0)

    def test_completed_traces_enter_the_ring(self, wired):
        tracer, recorder = wired
        make_trace(tracer, "a")
        make_trace(tracer, "b")
        assert recorder.traces_recorded == 2
        assert [t[0].name for t in recorder.traces()] == ["a", "b"]

    def test_open_traces_do_not(self, wired):
        tracer, recorder = wired
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            assert recorder.traces_recorded == 0  # root still open
        assert recorder.traces_recorded == 1

    def test_ring_keeps_only_the_last_n(self, wired):
        tracer, recorder = wired
        for name in "abcde":
            make_trace(tracer, name)
        assert [t[0].name for t in recorder.traces()] == ["c", "d", "e"]

    def test_find_trace_by_hex_and_int(self, wired):
        tracer, recorder = wired
        make_trace(tracer, "a")
        wanted = make_trace(tracer, "b")
        found = recorder.find_trace(wanted)
        assert found is not None and found[0].name == "b"
        assert recorder.find_trace(int(wanted, 16))[0].name == "b"
        assert recorder.find_trace("f" * 32) is None


class TestTrigger:
    def test_dump_snapshots_the_ring(self, wired):
        tracer, recorder = wired
        make_trace(tracer, "a")
        make_trace(tracer, "b")
        dump = recorder.trigger("fault", detail="rung=cpu_sdist")
        assert dump.reason == "fault"
        assert len(dump.traces) == 2
        assert len(dump.trace_ids) == 2
        # later traffic must not mutate the snapshot
        make_trace(tracer, "c")
        assert len(dump.traces) == 2

    def test_dump_writes_chrome_doc(self, tmp_path):
        tracer = Tracer()
        recorder = FlightRecorder(capacity=4, dump_dir=tmp_path)
        tracer.on_trace_complete = recorder.on_trace
        make_trace(tracer, "q")
        dump = recorder.trigger("breaker open", detail="index=G-Grid")
        assert dump.path is not None and dump.path.exists()
        assert "breaker_open" in dump.path.name
        doc = json.loads(dump.path.read_text())
        assert doc["metadata"] == {
            "reason": "breaker open",
            "detail": "index=G-Grid",
        }
        names = [e["name"] for e in doc["traceEvents"]]
        assert "q" in names and "q.child0" in names

    def test_rotation_keeps_first_dump_per_reason(self, wired):
        tracer, recorder = wired
        recorder.max_dumps = 3
        first_fault = recorder.trigger("fault", detail="first")
        recorder.trigger("failover", detail="first")
        for _ in range(10):
            recorder.trigger("fault", detail="later")
        assert len(recorder.dumps) == 3
        assert recorder.dumps[0] is first_fault
        assert recorder.dumps[1].reason == "failover"


class TestHubWiring:
    def test_with_tracing_wires_recorder_to_tracer(self):
        obs = Observability.with_tracing(flight_capacity=5)
        assert obs.tracer.on_trace_complete == obs.flight.on_trace
        with obs.tracer.span("query"):
            pass
        assert obs.flight.traces_recorded == 1

    def test_plain_bundle_has_no_recorder(self):
        assert Observability().flight is None
