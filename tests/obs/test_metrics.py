"""Unit tests for the metrics registry and its exposition formats."""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_scale_buckets,
)

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# bucket generation
# ----------------------------------------------------------------------
def test_log_buckets_span_and_spacing():
    bounds = log_scale_buckets(1e-6, 100.0, per_decade=4)
    assert bounds[0] == pytest.approx(1e-6)
    assert bounds[-1] == pytest.approx(100.0)
    # 8 decades x 4 per decade, plus the lower bound itself
    assert len(bounds) == 33
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(r == pytest.approx(10 ** 0.25) for r in ratios)


def test_log_buckets_validation():
    with pytest.raises(ConfigError):
        log_scale_buckets(0.0, 1.0)
    with pytest.raises(ConfigError):
        log_scale_buckets(1.0, 1.0)
    with pytest.raises(ConfigError):
        log_scale_buckets(1e-6, 1.0, per_decade=0)


def test_default_latency_buckets_are_shared():
    assert LATENCY_BUCKETS == log_scale_buckets()
    assert Histogram().bounds == LATENCY_BUCKETS


# ----------------------------------------------------------------------
# the three metric kinds
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    with pytest.raises(ConfigError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(10)
    g.inc(5)
    g.dec(12)
    assert g.value == pytest.approx(3.0)


def test_histogram_counts_and_sum():
    h = Histogram(buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(105.0)
    # per-bucket (non-cumulative) placement, final slot is +Inf
    assert h.counts == [1, 1, 1, 1]


def test_histogram_boundary_value_lands_in_le_bucket():
    h = Histogram(buckets=[1.0, 2.0])
    h.observe(1.0)  # le="1.0" means <= 1.0
    assert h.counts == [1, 0, 0]


def test_histogram_validation():
    with pytest.raises(ConfigError):
        Histogram(buckets=[])
    with pytest.raises(ConfigError):
        Histogram(buckets=[1.0, 1.0, 2.0])


def test_quantile_empty_histogram_is_zero():
    h = Histogram()
    assert h.quantile(0.5) == 0.0
    assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_quantile_singleton_brackets_the_value():
    h = Histogram(buckets=[1.0, 2.0, 4.0])
    h.observe(1.5)
    for q in (0.5, 0.95, 0.99):
        assert 1.0 <= h.quantile(q) <= 2.0


def test_quantile_interpolates_within_bucket():
    h = Histogram(buckets=[0.0, 1.0])
    for _ in range(100):
        h.observe(0.5)  # all mass in the (0, 1] bucket
    assert h.quantile(0.5) == pytest.approx(0.5, abs=0.01)


def test_quantile_overflow_bucket_clamps_to_top_bound():
    h = Histogram(buckets=[1.0, 2.0])
    h.observe(1e9)
    assert h.quantile(0.99) == pytest.approx(2.0)


def test_quantile_ordering_and_range_check():
    h = Histogram()
    for i in range(1, 101):
        h.observe(i / 1000)
    assert h.quantile(0.5) <= h.quantile(0.95) <= h.quantile(0.99)
    with pytest.raises(ConfigError):
        h.quantile(1.5)


# ----------------------------------------------------------------------
# families and the registry
# ----------------------------------------------------------------------
def test_family_same_labels_same_child():
    reg = MetricsRegistry()
    fam = reg.counter("hits_total", labelnames=("route",))
    a = fam.labels(route="/knn")
    a.inc(3)
    assert fam.labels(route="/knn") is a
    assert fam.labels(route="/other").value == 0


def test_family_label_validation():
    reg = MetricsRegistry()
    fam = reg.counter("hits_total", labelnames=("route",))
    with pytest.raises(ConfigError):
        fam.labels(verb="GET")
    with pytest.raises(ConfigError):
        fam.labels()
    with pytest.raises(ConfigError):
        fam.default()  # labeled family has no unlabeled child


def test_registry_families_are_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("x_total") is reg.counter("x_total")


def test_registry_rejects_kind_and_label_conflicts():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ConfigError):
        reg.gauge("x_total")
    reg.histogram("lat_seconds", labelnames=("phase",))
    with pytest.raises(ConfigError):
        reg.histogram("lat_seconds", labelnames=("stage",))


def test_warn_counts_by_source_and_bounds_ring():
    reg = MetricsRegistry(max_warnings=3)
    for i in range(5):
        reg.warn("gpu", f"event {i}")
    reg.warn("server", "other")
    fam = reg.families()["repro_warnings_total"]
    assert fam.labels(source="gpu").value == 5
    assert fam.labels(source="server").value == 1
    assert len(reg.warnings) == 3  # ring keeps only the newest
    assert reg.warnings[-1] == "[server] other"
    assert all("[" in w for w in reg.warnings)


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("req_total", help="Requests.", labelnames=("verb",)).labels(
        verb="GET"
    ).inc(7)
    reg.gauge("depth").default().set(3)
    h = reg.histogram("lat_seconds", buckets=[1.0, 2.0]).default()
    h.observe(0.5)
    h.observe(5.0)
    text = reg.write_prometheus()
    assert "# HELP req_total Requests." in text
    assert "# TYPE req_total counter" in text
    assert 'req_total{verb="GET"} 7' in text
    assert "depth 3" in text
    # histogram buckets are cumulative and end at +Inf
    assert 'lat_seconds_bucket{le="1"} 1' in text
    assert 'lat_seconds_bucket{le="2"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 2' in text
    assert "lat_seconds_count 2" in text
    assert "lat_seconds_sum 5.5" in text


def test_prometheus_skips_childless_families():
    reg = MetricsRegistry()
    reg.counter("never_touched_total", help="no children yet")
    assert "never_touched_total" not in reg.write_prometheus()


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("x_total", labelnames=("path",)).labels(path='a"b\\c').inc()
    text = reg.write_prometheus()
    assert 'path="a\\"b\\\\c"' in text


def test_snapshot_includes_percentiles_and_warnings():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds").default()
    for _ in range(10):
        h.observe(0.01)
    reg.warn("test", "hello")
    snap = reg.snapshot()
    assert snap["warnings"] == ["[test] hello"]
    values = snap["metrics"]["lat_seconds"]["values"]
    assert values[0]["count"] == 10
    for key in ("p50", "p95", "p99"):
        assert values[0][key] > 0


def test_write_json_round_trips(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x_total").default().inc(2)
    path = reg.write_json(tmp_path / "metrics.json")
    doc = json.loads(path.read_text())
    assert doc["metrics"]["x_total"]["type"] == "counter"
    assert doc["metrics"]["x_total"]["values"][0]["value"] == 2
    assert not math.isnan(doc["metrics"]["x_total"]["values"][0]["value"])


# ----------------------------------------------------------------------
# exposition escaping (Prometheus text format spec)
# ----------------------------------------------------------------------
def test_prometheus_escapes_all_special_label_characters():
    # the spec's three escapes, in one value: backslash first, then
    # quote and newline — and the backslash must be escaped before the
    # others or the output double-escapes
    reg = MetricsRegistry()
    reg.counter("x_total", labelnames=("path",)).labels(
        path='back\\slash "quote"\nnewline'
    ).inc()
    text = reg.write_prometheus()
    assert 'path="back\\\\slash \\"quote\\"\\nnewline"' in text
    # the raw newline must not survive into the exposition line
    line = next(ln for ln in text.splitlines() if ln.startswith("x_total{"))
    assert line == 'x_total{path="back\\\\slash \\"quote\\"\\nnewline"} 1'


def test_prometheus_escapes_help_text():
    reg = MetricsRegistry()
    reg.counter(
        "x_total", help="line one\nline two with back\\slash"
    ).default().inc()
    text = reg.write_prometheus()
    assert "# HELP x_total line one\\nline two with back\\\\slash" in text


# ----------------------------------------------------------------------
# histogram exemplars
# ----------------------------------------------------------------------
def test_histogram_exemplars_opt_in_exposition():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds").default()
    h.observe(0.5, exemplar="00000000000000000000000000000abc")
    classic = reg.write_prometheus()
    assert "# {" not in classic  # classic parsers see plain text
    open_metrics = reg.write_prometheus(exemplars=True)
    assert (
        '# {trace_id="00000000000000000000000000000abc"} 0.5'
        in open_metrics
    )


def test_histogram_exemplar_keeps_latest_per_bucket_and_snapshots():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", buckets=(1.0, 2.0)).default()
    h.observe(0.5, exemplar="aa")
    h.observe(0.7, exemplar="bb")  # same bucket: replaces
    h.observe(1.5)  # no exemplar: bucket stays bare
    entry = reg.snapshot()["metrics"]["lat_seconds"]["values"][0]
    assert entry["exemplars"] == {"1": {"value": 0.7, "trace_id": "bb"}}


# ----------------------------------------------------------------------
# rate-limited warner suppression counter
# ----------------------------------------------------------------------
def test_warner_counts_suppressed_occurrences():
    from repro.obs.metrics import RateLimitedWarner

    reg = MetricsRegistry()
    warner = RateLimitedWarner(reg, "shard_router", every=100)
    for _ in range(250):
        warner.record("shards failed over")
    # warned at 1, 100, 200 -> 247 suppressed
    assert len(reg.warnings) == 3
    text = reg.write_prometheus()
    assert (
        'repro_warnings_suppressed_total{source="shard_router"} 247' in text
    )
