"""Unit tests for the span tracer and the merged Chrome-trace export."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    span,
    write_chrome_trace,
)
from repro.simgpu.device import SimGpu
from repro.simgpu.trace import GpuTrace


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


# ----------------------------------------------------------------------
# span recording
# ----------------------------------------------------------------------
def test_nesting_sets_depth_and_parent():
    tracer = Tracer()
    with tracer.span("query") as q:
        with tracer.span("clean_cells") as c:
            with tracer.span("xshuffle_dedup") as x:
                pass
        with tracer.span("refine") as r:
            pass
    assert [s.name for s in tracer.spans] == [
        "query",
        "clean_cells",
        "xshuffle_dedup",
        "refine",
    ]
    assert (q.depth, c.depth, x.depth, r.depth) == (0, 1, 2, 1)
    assert c.parent is q and x.parent is c and r.parent is q
    assert q.parent is None


def test_span_durations_from_injected_clock():
    # epoch=0; spans: outer [1, 6], inner [2, 4]
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 4.0, 6.0]))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.spans
    assert (outer.start_s, outer.end_s) == (1.0, 6.0)
    assert inner.duration_s == pytest.approx(2.0)
    assert outer.duration_s == pytest.approx(5.0)


def test_span_attrs_initial_and_set_attr():
    tracer = Tracer()
    with tracer.span("query", {"k": 4}) as s:
        s.set_attr("candidates", 17)
    assert s.attrs == {"k": 4, "candidates": 17}


def test_out_of_order_close_raises():
    tracer = Tracer()
    a = tracer.span("a")
    b = tracer.span("b")
    a.__enter__()
    b.__enter__()
    with pytest.raises(ConfigError):
        a.__exit__(None, None, None)


def test_clear_resets_spans_and_stack():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.spans == []
    with tracer.span("y"):
        pass
    assert tracer.spans[0].depth == 0


def test_total_by_name_accumulates():
    tracer = Tracer(clock=_fake_clock([0.0, 0.0, 1.0, 2.0, 5.0]))
    with tracer.span("refine"):
        pass
    with tracer.span("refine"):
        pass
    assert tracer.total_by_name()["refine"] == pytest.approx(4.0)


# ----------------------------------------------------------------------
# the module-level span() hook
# ----------------------------------------------------------------------
def test_module_span_is_shared_noop_when_inactive():
    assert current_tracer() is None
    # identity: the inactive path allocates nothing per call
    assert span("ingest") is NULL_SPAN
    assert span("ingest") is span("clean_cells")
    with span("ingest") as s:
        s.set_attr("messages", 5)  # silently dropped


def test_activate_routes_module_span_and_restores():
    tracer = Tracer()
    with tracer.activate():
        assert current_tracer() is tracer
        with span("ingest", {"messages": 3}):
            pass
    assert current_tracer() is None
    assert span("after") is NULL_SPAN
    assert [s.name for s in tracer.spans] == ["ingest"]
    assert tracer.spans[0].attrs == {"messages": 3}


def test_activate_nests_and_restores_previous():
    outer, inner = Tracer(), Tracer()
    with outer.activate():
        with inner.activate():
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def test_to_chrome_events_shape():
    tracer = Tracer(clock=_fake_clock([0.0, 0.5, 1.5]))
    with tracer.span("query", {"k": 2, "loc": object()}):
        pass
    (ev,) = tracer.to_chrome_events(pid=7)
    assert ev["ph"] == "X"
    assert ev["pid"] == 7
    assert ev["ts"] == pytest.approx(0.5e6)
    assert ev["dur"] == pytest.approx(1.0e6)
    assert ev["args"]["k"] == 2
    assert isinstance(ev["args"]["loc"], str)  # non-JSON attrs stringified


def test_write_chrome_trace_requires_a_source(tmp_path):
    with pytest.raises(ConfigError):
        write_chrome_trace(tmp_path / "t.json")


def test_write_chrome_trace_cpu_only(tmp_path):
    tracer = Tracer()
    with tracer.span("query"):
        pass
    doc = json.loads(write_chrome_trace(tmp_path / "t.json", tracer).read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert "query" in names and "process_name" in names


def test_write_chrome_trace_merges_cpu_and_gpu(tmp_path):
    gpu = SimGpu()
    tracer = Tracer()
    with GpuTrace(gpu) as gpu_trace:
        with tracer.span("query"):
            gpu.to_device("xs", [1, 2, 3])
            gpu.launch("GPU_SDist", 4, lambda ctx, xs: ctx.charge(5), gpu.fetch("xs"))
            gpu.from_device("xs")
    path = write_chrome_trace(tmp_path / "merged.json", tracer, gpu_trace)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    # both process tracks are named for Perfetto
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert meta == {0: "gpu (simulated)", 1: "cpu"}
    cpu = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
    gpu_evs = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert {e["name"] for e in cpu} == {"query"}
    assert {e["name"] for e in gpu_evs} >= {"GPU_SDist", "xs"}
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
