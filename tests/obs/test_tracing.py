"""Unit tests for the span tracer and the merged Chrome-trace export."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.tracing import (
    NULL_SPAN,
    TraceContext,
    Tracer,
    current_context,
    current_tracer,
    span,
    write_chrome_trace,
)
from repro.simgpu.device import SimGpu
from repro.simgpu.trace import GpuTrace

pytestmark = pytest.mark.obs


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


# ----------------------------------------------------------------------
# span recording
# ----------------------------------------------------------------------
def test_nesting_sets_depth_and_parent():
    tracer = Tracer()
    with tracer.span("query") as q:
        with tracer.span("clean_cells") as c:
            with tracer.span("xshuffle_dedup") as x:
                pass
        with tracer.span("refine") as r:
            pass
    assert [s.name for s in tracer.spans] == [
        "query",
        "clean_cells",
        "xshuffle_dedup",
        "refine",
    ]
    assert (q.depth, c.depth, x.depth, r.depth) == (0, 1, 2, 1)
    assert c.parent is q and x.parent is c and r.parent is q
    assert q.parent is None


def test_span_durations_from_injected_clock():
    # epoch=0; spans: outer [1, 6], inner [2, 4]
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 4.0, 6.0]))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.spans
    assert (outer.start_s, outer.end_s) == (1.0, 6.0)
    assert inner.duration_s == pytest.approx(2.0)
    assert outer.duration_s == pytest.approx(5.0)


def test_span_attrs_initial_and_set_attr():
    tracer = Tracer()
    with tracer.span("query", {"k": 4}) as s:
        s.set_attr("candidates", 17)
    assert s.attrs == {"k": 4, "candidates": 17}


def test_out_of_order_close_raises():
    tracer = Tracer()
    a = tracer.span("a")
    b = tracer.span("b")
    a.__enter__()
    b.__enter__()
    with pytest.raises(ConfigError):
        a.__exit__(None, None, None)


def test_clear_resets_spans_and_stack():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.spans == []
    with tracer.span("y"):
        pass
    assert tracer.spans[0].depth == 0


def test_total_by_name_accumulates():
    tracer = Tracer(clock=_fake_clock([0.0, 0.0, 1.0, 2.0, 5.0]))
    with tracer.span("refine"):
        pass
    with tracer.span("refine"):
        pass
    assert tracer.total_by_name()["refine"] == pytest.approx(4.0)


# ----------------------------------------------------------------------
# the module-level span() hook
# ----------------------------------------------------------------------
def test_module_span_is_shared_noop_when_inactive():
    assert current_tracer() is None
    # identity: the inactive path allocates nothing per call
    assert span("ingest") is NULL_SPAN
    assert span("ingest") is span("clean_cells")
    with span("ingest") as s:
        s.set_attr("messages", 5)  # silently dropped


def test_activate_routes_module_span_and_restores():
    tracer = Tracer()
    with tracer.activate():
        assert current_tracer() is tracer
        with span("ingest", {"messages": 3}):
            pass
    assert current_tracer() is None
    assert span("after") is NULL_SPAN
    assert [s.name for s in tracer.spans] == ["ingest"]
    assert tracer.spans[0].attrs == {"messages": 3}


def test_activate_nests_and_restores_previous():
    outer, inner = Tracer(), Tracer()
    with outer.activate():
        with inner.activate():
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def test_to_chrome_events_shape():
    tracer = Tracer(clock=_fake_clock([0.0, 0.5, 1.5]))
    with tracer.span("query", {"k": 2, "loc": object()}):
        pass
    (ev,) = tracer.to_chrome_events(pid=7)
    assert ev["ph"] == "X"
    assert ev["pid"] == 7
    assert ev["ts"] == pytest.approx(0.5e6)
    assert ev["dur"] == pytest.approx(1.0e6)
    assert ev["args"]["k"] == 2
    assert isinstance(ev["args"]["loc"], str)  # non-JSON attrs stringified


def test_write_chrome_trace_requires_a_source(tmp_path):
    with pytest.raises(ConfigError):
        write_chrome_trace(tmp_path / "t.json")


def test_write_chrome_trace_cpu_only(tmp_path):
    tracer = Tracer()
    with tracer.span("query"):
        pass
    doc = json.loads(write_chrome_trace(tmp_path / "t.json", tracer).read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert "query" in names and "process_name" in names


def test_write_chrome_trace_merges_cpu_and_gpu(tmp_path):
    gpu = SimGpu()
    tracer = Tracer()
    with GpuTrace(gpu) as gpu_trace:
        with tracer.span("query"):
            gpu.to_device("xs", [1, 2, 3])
            gpu.launch("GPU_SDist", 4, lambda ctx, xs: ctx.charge(5), gpu.fetch("xs"))
            gpu.from_device("xs")
    path = write_chrome_trace(tmp_path / "merged.json", tracer, gpu_trace)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    # both process tracks are named for Perfetto
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert meta == {0: "gpu (simulated)", 1: "cpu"}
    cpu = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
    gpu_evs = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert {e["name"] for e in cpu} == {"query"}
    assert {e["name"] for e in gpu_evs} >= {"GPU_SDist", "xs"}
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")


# ----------------------------------------------------------------------
# distributed trace context
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_encode_shape(self):
        ctx = TraceContext(trace_id=0xABC, span_id=0x12, sampled=True)
        assert ctx.encode() == "00-" + "0" * 29 + "abc-" + "0" * 14 + "12-01"

    def test_round_trip(self):
        ctx = TraceContext(trace_id=(1 << 127) + 5, span_id=7, sampled=False)
        assert TraceContext.decode(ctx.encode()) == ctx

    @given(
        trace_id=st.integers(min_value=1, max_value=(1 << 128) - 1),
        span_id=st.integers(min_value=1, max_value=(1 << 64) - 1),
        sampled=st.booleans(),
    )
    def test_round_trip_property(self, trace_id, span_id, sampled):
        ctx = TraceContext(trace_id, span_id, sampled)
        decoded = TraceContext.decode(ctx.encode())
        assert decoded == ctx
        assert len(ctx.encode()) == 55

    @pytest.mark.parametrize("trace_id,span_id", [(0, 1), (1, 0), (1 << 128, 1), (1, 1 << 64)])
    def test_out_of_range_ids_rejected(self, trace_id, span_id):
        with pytest.raises(ConfigError):
            TraceContext(trace_id, span_id)

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "00-abc-def-01",  # wrong widths
            "01-" + "1" * 32 + "-" + "1" * 16 + "-01",  # bad version
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "1" * 32 + "-" + "1" * 16,  # missing flags
        ],
    )
    def test_malformed_headers_rejected(self, header):
        with pytest.raises(ConfigError):
            TraceContext.decode(header)


class TestTraceIdentity:
    def test_each_root_starts_a_new_trace(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.trace_id != b.trace_id
        assert a.parent_span_id is None and b.parent_span_id is None

    def test_children_inherit_trace_id_and_parent_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert child.trace_id == root.trace_id == grand.trace_id
        assert child.parent_span_id == root.span_id
        assert grand.parent_span_id == child.span_id

    def test_ids_are_deterministic_across_tracers(self):
        ids = []
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
            ids.append([(s.trace_id, s.span_id) for s in tracer.spans])
        assert ids[0] == ids[1]

    def test_remote_parent_joins_the_propagated_trace(self):
        router, shard = Tracer(), Tracer()
        with router.span("router.knn") as root:
            header = root.context.encode()
        with shard.span("query", parent=header) as sp:
            pass
        assert sp.trace_id == root.trace_id
        assert sp.parent_span_id == root.span_id

    def test_current_context_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert current_context() is None
        with tracer.activate():
            assert current_context() is None  # nothing open yet
            with tracer.span("outer") as outer:
                assert current_context() == outer.context
                with tracer.span("inner") as inner:
                    assert current_context() == inner.context
                assert current_context() == outer.context
        assert current_context() is None

    def test_chrome_events_carry_trace_identity(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        root_ev, child_ev = tracer.to_chrome_events()
        assert root_ev["args"]["trace_id"] == child_ev["args"]["trace_id"]
        assert child_ev["args"]["parent_span_id"] == root_ev["args"]["span_id"]
        assert "parent_span_id" not in root_ev["args"]

    def test_on_trace_complete_fires_per_root(self):
        tracer = Tracer()
        seen = []
        tracer.on_trace_complete = lambda spans: seen.append(
            [s.name for s in spans]
        )
        with tracer.span("a"):
            with tracer.span("a.1"):
                pass
        with tracer.span("b"):
            pass
        assert seen == [["a", "a.1"], ["b"]]
