"""Acceptance tests: a replayed workload through the observability layer.

These pin the ISSUE's deliverables: a Prometheus dump covering the full
query lifecycle, a merged CPU+GPU Chrome trace loadable in Perfetto,
latency percentiles in the replay report, and — the flip side — zero
GPU-visible overhead when observability is off.
"""

import json

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.mobility.workload import make_workload
from repro.obs import Observability, write_chrome_trace
from repro.obs.hub import default_observability
from repro.server.server import QueryServer
from repro.simgpu.trace import GpuTrace

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def workload(small_graph):
    return make_workload(
        small_graph, num_objects=20, duration=8.0, num_queries=6, k=3, seed=7
    )


def _replay(small_graph, workload, obs):
    index = GGridIndex(small_graph, GGridConfig(eta=3, delta_b=8))
    server = QueryServer(index, obs=obs)
    report, _ = server.replay(workload)
    return index, report


def test_replay_produces_full_prometheus_dump(small_graph, workload):
    obs = Observability.with_tracing()
    _, report = _replay(small_graph, workload, obs)
    text = obs.registry.write_prometheus()

    # lifecycle counters
    assert "repro_ingest_messages_total" in text
    assert f"repro_queries_total {workload.num_queries}" in text
    # per-phase histograms: cleaning, GPU kernels, CPU refinement
    for phase in ("ingest", "select", "clean_cells", "sdist", "refine"):
        assert f'repro_phase_seconds_bucket{{phase="{phase}",le="+Inf"}}' in text
    # device families
    assert "repro_gpu_kernel_seconds_total" in text
    assert "repro_gpu_transfer_bytes_total" in text
    # server state gauges
    assert "repro_objects 20" in text
    assert "repro_backlog_messages" in text


def test_replay_populates_tracer_and_slowlog(small_graph, workload):
    obs = Observability.with_tracing()
    _, report = _replay(small_graph, workload, obs)

    names = {s.name for s in obs.tracer.spans}
    assert {"query", "select_candidates", "clean_cells", "sdist", "refine"} <= names
    roots = [s for s in obs.tracer.spans if s.name == "query"]
    assert len(roots) == workload.num_queries
    assert all(s.parent is None for s in roots)

    entries = obs.slow_queries.entries()
    assert 0 < len(entries) <= workload.num_queries
    slowest = entries[0]
    assert slowest.modeled_s == max(r.modeled_s for r in report.query_records)
    assert slowest.phases  # phase breakdown retained
    assert "candidates" in slowest.as_dict()


def test_report_percentiles_in_as_dict(small_graph, workload):
    obs = Observability()
    _, report = _replay(small_graph, workload, obs)
    d = report.as_dict()
    assert 0 < d["query_p50_s"] <= d["query_p95_s"] <= d["query_p99_s"]
    # per-phase percentiles cover the GPU and CPU sides of the lifecycle
    assert {"clean_cells", "sdist", "select", "refine"} <= set(d["phases"])
    assert d["phases"]["select"]["p50"] > 0
    assert d["fallback_queries"] == report.fallback_queries


def test_merged_chrome_trace_loads_and_covers_both_clocks(
    small_graph, workload, tmp_path
):
    obs = Observability.with_tracing()
    index = GGridIndex(small_graph, GGridConfig(eta=3, delta_b=8))
    server = QueryServer(index, obs=obs)
    with GpuTrace(index.gpu) as gpu_trace:
        server.replay(workload)
    path = write_chrome_trace(tmp_path / "timeline.json", obs.tracer, gpu_trace)

    doc = json.loads(path.read_text())  # valid JSON == Perfetto-loadable
    events = doc["traceEvents"]
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert meta == {0: "gpu (simulated)", 1: "cpu"}
    cpu_names = {e["name"] for e in events if e["ph"] == "X" and e["pid"] == 1}
    gpu_names = {e["name"] for e in events if e["ph"] == "X" and e["pid"] == 0}
    assert "query" in cpu_names and "refine" in cpu_names
    assert "GPU_SDist" in gpu_names
    assert any("X_Shuffle" in n for n in gpu_names)


def test_observability_off_adds_no_gpu_work(small_graph, workload):
    """The opt-in guarantee: instrumentation must not change what the
    device does — same kernel launches, same bytes moved."""
    assert default_observability() is None  # nothing configured globally
    plain_index, plain_report = _replay(small_graph, workload, obs=None)
    obs = Observability.with_tracing()
    inst_index, inst_report = _replay(small_graph, workload, obs)

    assert plain_index.gpu.stats.kernel_launches == inst_index.gpu.stats.kernel_launches
    assert plain_index.gpu.stats.total_bytes == inst_index.gpu.stats.total_bytes
    # and the answers/accounting are identical either way
    assert plain_report.n_queries == inst_report.n_queries
    assert plain_report.transfer_bytes == inst_report.transfer_bytes
    # with no bundle the server resolves no instruments at all
    server = QueryServer(plain_index)
    assert server.obs is None and server._inst is None
