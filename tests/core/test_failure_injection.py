"""Failure-injection tests: faults must never lose cached updates.

The lazy design's whole value is the message cache; these tests inject
faults into the GPU phase of cleaning (device memory exhaustion, a
failing kernel) and assert the index recovers: no message lost, no list
left locked, and queries answer exactly once the fault clears.
"""

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import DeviceMemoryError
from repro.roadnet.location import NetworkLocation
from repro.simgpu.device import CostModel, SimGpu


def _populate(graph, index, rng, objects=25):
    locations = {}
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
        locations[obj] = loc
        index.ingest(Message(obj, loc.edge_id, loc.offset, 1.0))
    return locations


def test_device_memory_exhaustion_rolls_back(medium_graph):
    """A device too small for the bucket transfer aborts the clean but
    loses nothing and leaves no list locked."""
    config = GGridConfig(eta=3, delta_b=4)
    gpu = SimGpu(CostModel())
    index = GGridIndex(medium_graph, config, gpu=gpu)
    rng = random.Random(1)
    _populate(medium_graph, index, rng)
    pending_before = index.pending_messages()

    # shrink free memory to nothing by stuffing the device
    free = gpu.memory.free_bytes
    gpu.memory.store("hog", None, nbytes=free)

    with pytest.raises(DeviceMemoryError):
        index.clean_cells(set(range(index.grid.num_cells)), t_now=2.0)

    assert index.pending_messages() == pending_before  # nothing lost
    assert not any(m.locked for m in index.lists.values())  # no leaked locks

    # fault clears: cleaning and queries work again, exactly
    gpu.memory.free("hog")
    result = index.clean_cells(set(range(index.grid.num_cells)), t_now=2.0)
    assert len(result.all_objects()) == index.num_objects


def test_kernel_fault_rolls_back(medium_graph, monkeypatch):
    """An exception inside the X-shuffle kernel must not consume the
    frozen buckets."""
    config = GGridConfig(eta=3, delta_b=4)
    index = GGridIndex(medium_graph, config)
    rng = random.Random(2)
    _populate(medium_graph, index, rng)
    pending_before = index.pending_messages()

    import repro.core.cleaning as cleaning_mod

    def boom(*args, **kwargs):
        raise RuntimeError("injected kernel fault")

    monkeypatch.setattr(cleaning_mod, "x_shuffle_kernel", boom)
    with pytest.raises(RuntimeError, match="injected"):
        index.clean_cells(set(range(index.grid.num_cells)), t_now=2.0)
    monkeypatch.undo()

    assert index.pending_messages() == pending_before
    assert not any(m.locked for m in index.lists.values())
    # and answers are still exact afterwards
    answer = index.knn(NetworkLocation(0, 0.0), k=5, t_now=2.0)
    assert len(answer.entries) == 5


def test_queries_after_fault_match_oracle(medium_graph, monkeypatch):
    from repro.baselines.naive import NaiveKnnIndex

    config = GGridConfig(eta=3, delta_b=4)
    index = GGridIndex(medium_graph, config)
    naive = NaiveKnnIndex(medium_graph)
    rng = random.Random(3)
    for obj in range(20):
        e = rng.randrange(medium_graph.num_edges)
        m = Message(obj, e, rng.uniform(0, medium_graph.edge(e).weight), 1.0)
        index.ingest(m)
        naive.ingest(m)

    import repro.core.cleaning as cleaning_mod

    original = cleaning_mod.x_shuffle_kernel
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient fault")
        return original(*args, **kwargs)

    monkeypatch.setattr(cleaning_mod, "x_shuffle_kernel", flaky)
    with pytest.raises(RuntimeError):
        index.knn(NetworkLocation(0, 0.1), k=4, t_now=1.0)
    # retry succeeds and matches the oracle
    got = index.knn(NetworkLocation(0, 0.1), k=4, t_now=1.0).distances()
    want = naive.knn(NetworkLocation(0, 0.1), k=4, t_now=1.0).distances()
    assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_backpressure_on_cell_locked_for_cleaning(medium_graph):
    """Capacity pressure on a cell whose list is locked by an in-flight
    cleaning pass: the forced in-line compaction must not steal the lock
    (the cleaner skips locked lists), so the CapacityError propagates —
    and crucially nothing is lost and the first pass's lock is intact."""
    config = GGridConfig(eta=3, delta_b=2, max_buckets_per_cell=2)
    index = GGridIndex(medium_graph, config)
    cell = index.grid.cell_of_edge(0)
    for i in range(4):  # fill the cell to its 2-bucket cap
        index.ingest(Message(i, 0, 0.1, 1.0 + i))
    mlist = index.lists[cell]
    mlist.lock_for_cleaning()  # an in-flight pass owns the backlog
    for i in range(4, 6):  # fill the post-lock bucket too
        index.ingest(Message(i, 0, 0.1, 5.0 + i))

    from repro.errors import CapacityError

    pending = mlist.num_messages
    with pytest.raises(CapacityError):
        index.ingest(Message(9, 0, 0.2, 20.0))
    assert mlist.locked  # the in-flight pass still owns its lock
    assert mlist.num_messages == pending  # nothing lost, nothing snuck in
    assert 9 not in index.object_table  # the failed update never landed

    # once the pass completes, backpressure compaction works again
    mlist.release_cleaned()
    index.ingest(Message(9, 0, 0.2, 20.0))
    assert 9 in index.object_table


def test_unlock_abort_restores_buckets():
    from repro.core.message_list import MessageList

    lst = MessageList(capacity=2)
    for i in range(5):
        lst.append(Message(i, 0, 0.0, float(i)))
    lst.lock_for_cleaning()
    assert lst.locked
    lst.unlock_abort()
    assert not lst.locked
    assert lst.num_messages == 5  # everything still there
    # a subsequent normal cycle works
    lst.lock_for_cleaning()
    frozen = sum(b.n for b in lst.locked_buckets(100.0, 1e9))
    assert frozen == 5
    lst.release_cleaned()
    assert lst.num_messages == 0
