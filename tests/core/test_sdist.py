"""Unit and property tests for GPU_SDist / GPU_First_k / GPU_Unresolved."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.graph_grid import GraphGrid
from repro.core.sdist import first_k_kernel, sdist_kernel, unresolved_kernel
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.generators import grid_road_network
from repro.simgpu.device import SimGpu


def _restricted_dijkstra(graph, vertices, seeds):
    """Oracle: Dijkstra on the subgraph induced by ``vertices``."""
    sub, mapping = graph.subgraph(vertices)
    local_seeds = {mapping[v]: c for v, c in seeds.items() if v in mapping}
    dist = multi_source_dijkstra(sub, local_seeds)
    inverse = {new: old for old, new in mapping.items()}
    return {inverse[v]: d for v, d in dist.items()}


def _run_sdist(graph, grid, cells, seeds, early_exit=True):
    gpu = SimGpu()
    vertices = grid.vertices_of_cells(cells)
    elements = grid.elements_of_cells(cells)
    return (
        gpu.launch(
            "sdist",
            max(1, len(elements)),
            sdist_kernel,
            elements,
            vertices,
            seeds,
            grid.config.delta_v,
            early_exit,
        ),
        gpu,
    )


@pytest.fixture(scope="module")
def built(small_graph):
    return GraphGrid.build(small_graph, GGridConfig())


def test_sdist_matches_restricted_dijkstra(built, small_graph):
    grid = built
    cells = set(range(min(6, grid.num_cells)))
    vertices = grid.vertices_of_cells(cells)
    seeds = {vertices[0]: 0.0}
    dist, _ = _run_sdist(small_graph, grid, cells, seeds)
    oracle = _restricted_dijkstra(small_graph, vertices, seeds)
    assert set(dist) == set(oracle)
    for v, d in oracle.items():
        assert dist[v] == pytest.approx(d)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_sdist_property_random_cells(seed):
    """Property: GPU_SDist == Dijkstra restricted to the shipped cells."""
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 5)
    grid = GraphGrid.build(graph, GGridConfig())
    n = grid.num_cells
    cells = set(rng.sample(range(n), rng.randrange(2, min(10, n))))
    vertices = grid.vertices_of_cells(cells)
    if not vertices:
        return
    seed_v = rng.choice(vertices)
    seeds = {seed_v: rng.uniform(0, 2.0)}
    dist, _ = _run_sdist(graph, grid, cells, seeds)
    oracle = _restricted_dijkstra(graph, vertices, seeds)
    assert set(dist) == set(oracle)
    for v, d in oracle.items():
        assert dist[v] == pytest.approx(d)


def test_sdist_early_exit_same_result(built, small_graph):
    grid = built
    cells = set(range(min(8, grid.num_cells)))
    seeds = {grid.vertices_of_cells(cells)[0]: 0.0}
    fast, gpu_fast = _run_sdist(small_graph, grid, cells, seeds, early_exit=True)
    slow, gpu_slow = _run_sdist(small_graph, grid, cells, seeds, early_exit=False)
    assert fast == slow
    assert gpu_fast.stats.sync_count <= gpu_slow.stats.sync_count


def test_sdist_unreachable_excluded(built, small_graph):
    """Vertices unreachable inside the cell subset are absent (inf)."""
    grid = built
    # two far-apart cells, seed in one: the other likely unreachable
    cells = {0, grid.num_cells - 1}
    vertices = grid.vertices_of_cells(cells)
    seeds = {vertices[0]: 0.0}
    dist, _ = _run_sdist(small_graph, grid, cells, seeds)
    oracle = _restricted_dijkstra(small_graph, vertices, seeds)
    assert set(dist) == set(oracle)


def test_first_k_kernel_ranks():
    gpu = SimGpu()
    dists = {1: 5.0, 2: 1.0, 3: 3.0, 4: 1.0}
    ranked = gpu.launch("firstk", 4, first_k_kernel, dists, 3)
    assert ranked == [(2, 1.0), (4, 1.0), (3, 3.0)]  # ties by id


def test_first_k_with_fewer_objects_than_k():
    gpu = SimGpu()
    ranked = gpu.launch("firstk", 1, first_k_kernel, {7: 2.0}, 5)
    assert ranked == [(7, 2.0)]


def test_unresolved_kernel_filters_by_bound():
    gpu = SimGpu()
    dist = {1: 0.5, 2: 2.0, 3: 1.5}
    out = gpu.launch("unres", 3, unresolved_kernel, [1, 2, 3, 4], dist, 1.6)
    assert out == [(1, 0.5), (3, 1.5)]  # 2 is too far, 4 unreachable


def test_unresolved_infinite_bound_takes_all_reachable():
    gpu = SimGpu()
    dist = {1: 0.5, 2: 2.0}
    out = gpu.launch("unres", 2, unresolved_kernel, [1, 2], dist, float("inf"))
    assert out == [(1, 0.5), (2, 2.0)]
