"""Unit tests for the Section VI closed-form cost model."""

import pytest

from repro.core.costmodel import (
    candidate_ops_bound,
    cleaning_ops_bound,
    messages_transferred_bound,
    refine_ops_bound,
    refine_radius,
    space_graph_grid,
    space_message_lists,
    space_object_table,
    transfer_bytes_bound,
)


def test_space_formulas_linear():
    assert space_graph_grid(100, 250) == 350
    assert space_message_lists(2.0, 1000) == 2000.0
    assert space_object_table(10) == 10 * space_object_table(1)


def test_transfer_bound_scales_with_k_and_rho():
    base = messages_transferred_bound(1.0, 1.8, 16)
    assert messages_transferred_bound(1.0, 1.8, 32) == pytest.approx(2 * base)
    assert messages_transferred_bound(2.0, 1.8, 16) == pytest.approx(2 * base)
    assert transfer_bytes_bound(1.0, 1.8, 16) == pytest.approx(base * 20)


def test_cleaning_bound_dominated_by_bucket_capacity():
    small = cleaning_ops_bound(8, 5, 1.0, 1.8, 16)
    large = cleaning_ops_bound(256, 5, 1.0, 1.8, 16)
    assert large > small
    assert large / small > 10  # O(delta_b) term dominates


def test_candidate_bound():
    assert candidate_ops_bound(1.8, 16, 2) == pytest.approx(57.6)


def test_refine_radius_shrinks_with_rho():
    wide = refine_radius(4.0, 1.4, 16)
    narrow = refine_radius(4.0, 3.0, 16)
    assert narrow < wide


def test_refine_radius_never_negative():
    assert refine_radius(1.0, 9.0, 16) == 0.0


def test_refine_ops_grow_with_k():
    assert refine_ops_bound(4.0, 1.8, 64) > refine_ops_bound(4.0, 1.8, 8)
