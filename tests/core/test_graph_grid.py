"""Unit tests for the graph grid structure (Section III-A)."""

import pytest

from repro.config import GGridConfig
from repro.core.graph_grid import GraphGrid
from repro.errors import UnknownEdgeError
from repro.roadnet.graph import RoadNetwork


@pytest.fixture(scope="module")
def grid(small_graph):
    return GraphGrid.build(small_graph, GGridConfig())


def test_every_vertex_in_one_cell(grid, small_graph):
    seen = sorted(
        vid for cell in grid.cells for vid in cell.real_vertices
    )
    assert seen == list(range(small_graph.num_vertices))


def test_cell_vertex_capacity(grid):
    assert all(cell.n_v <= grid.config.delta_c for cell in grid.cells)


def test_elements_respect_vertex_capacity(grid):
    for cell in grid.cells:
        for element in cell.elements:
            assert element.n <= grid.config.delta_v


def test_virtual_vertices_cover_all_in_edges(grid, small_graph):
    """Every in-edge of every vertex is stored in exactly one element."""
    stored: dict[int, int] = {}
    for cell in grid.cells:
        for element in cell.elements:
            for rec in element.edges:
                assert rec.edge_id not in stored
                stored[rec.edge_id] = element.real_id
    for e in small_graph.edges():
        assert stored[e.id] == e.dest


def test_virtual_vertex_creation():
    """A vertex with in-degree above delta_v spawns virtual elements."""
    g = RoadNetwork()
    hub = g.add_vertex()
    for i in range(5):
        v = g.add_vertex()
        g.add_bidirectional_edge(v, hub, 1.0)
    grid = GraphGrid.build(g, GGridConfig(delta_c=6, delta_v=2))
    elements = [
        el
        for cell in grid.cells
        for el in cell.elements
        if el.real_id == hub
    ]
    assert len(elements) == 3  # ceil(5 / 2)
    assert sum(el.n for el in elements) == 5
    assert [el.virtual_rank for el in elements] == [0, 1, 2]


def test_inverted_index_routes_by_source(grid, small_graph):
    for e in list(small_graph.edges())[:30]:
        assert grid.source_of_edge(e.id) == e.source
        assert grid.cell_of_edge(e.id) == grid.cell_of_vertex[e.source]


def test_unknown_edge_raises(grid):
    with pytest.raises(UnknownEdgeError):
        grid.cell_of_edge(10**9)
    with pytest.raises(UnknownEdgeError):
        grid.source_of_edge(-1)


def test_neighbors_symmetric(grid):
    for z in range(grid.num_cells):
        for n in grid.neighbors(z):
            assert z in grid.neighbors(n)


def test_neighbors_follow_edges(grid, small_graph):
    for e in list(small_graph.edges())[:30]:
        a = grid.cell_of_vertex[e.source]
        b = grid.cell_of_vertex[e.dest]
        if a != b:
            assert b in grid.neighbors(a)


def test_neighbors_of_set_excludes_set(grid):
    cells = {0, 1}
    ring = grid.neighbors_of_set(cells)
    assert not (ring & cells)


def test_vertices_and_elements_of_cells(grid):
    cells = set(range(min(4, grid.num_cells)))
    vertices = grid.vertices_of_cells(cells)
    assert len(vertices) == len(set(vertices))
    elements = grid.elements_of_cells(cells)
    assert {el.real_id for el in elements} == set(vertices) | {
        el.real_id for el in elements if el.n == 0
    }


def test_boundary_vertices_definition(grid, small_graph):
    cells = {0, 1, 2}
    inside = set(grid.vertices_of_cells(cells))
    boundary = set(grid.boundary_vertices(cells))
    for v in inside:
        crosses = any(
            grid.cell_of_vertex[e.dest] not in cells
            for e in small_graph.out_edges(v)
        )
        assert (v in boundary) == crosses


def test_whole_grid_has_no_boundary(grid):
    all_cells = set(range(grid.num_cells))
    assert grid.boundary_vertices(all_cells) == []


def test_size_accounting_positive(grid, small_graph):
    assert grid.size_bytes() > grid.device_nbytes() > 0
    # CPU copy adds the inverted index over all edges
    assert grid.size_bytes() - grid.device_nbytes() >= small_graph.num_edges * 12
