"""Small-surface tests for answer containers and cleaning results."""

from repro.core.cleaning import CleanedLocation, CleaningResult
from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.range_query import RangeAnswer


def test_knn_answer_accessors():
    answer = KnnAnswer(entries=[KnnResultEntry(3, 1.5), KnnResultEntry(7, 2.5)])
    assert answer.objects() == [3, 7]
    assert answer.distances() == [1.5, 2.5]


def test_range_answer_accessors():
    answer = RangeAnswer(entries=[KnnResultEntry(9, 0.25)])
    assert answer.objects() == [9]
    assert answer.distances() == [0.25]


def test_cleaning_result_flatten():
    result = CleaningResult()
    result.occupants[4] = {1: CleanedLocation(0, 0.5, 1.0)}
    result.occupants[7] = {2: CleanedLocation(3, 0.1, 2.0)}
    flat = result.all_objects()
    assert flat[1][0] == 4 and flat[2][0] == 7
    assert flat[1][1].offset == 0.5


def test_cleaning_result_flatten_latest_cell_wins_duplicates():
    """An object should appear in one cell only; if a duplicate sneaks in,
    flattening keeps a single deterministic entry."""
    result = CleaningResult()
    result.occupants[1] = {5: CleanedLocation(0, 0.1, 1.0)}
    result.occupants[2] = {5: CleanedLocation(1, 0.2, 2.0)}
    flat = result.all_objects()
    assert len(flat) == 1
    assert 5 in flat
