"""Unit tests for the CPU refinement step (Algorithm 6)."""

import pytest

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.core.refine import refine_knn


def _table(line_graph, placements):
    """placements: {obj: (edge, offset)} on the line graph 0-1-2-3-4."""
    ot = ObjectTable()
    for obj, (edge, offset) in placements.items():
        ot.put(obj, ObjectEntry(cell=0, edge=edge, offset=offset, t=1.0))
    return ot


def test_refinement_finds_object_outside_candidates(line_graph):
    # object 9 sits on edge 2->3 at offset 0.5 (edge id of 2->3)
    edge = next(e for e in line_graph.edges() if e.source == 2 and e.dest == 3)
    ot = _table(line_graph, {9: (edge.id, 0.5)})
    cell_of_vertex = [0] * line_graph.num_vertices
    # candidates say the best known is 10.0; vertex 2 is unresolved at
    # distance 1.0 from the query
    results, settled = refine_knn(
        line_graph,
        ot,
        cell_of_vertex,
        candidates={},
        unresolved=[(2, 1.0)],
        k=1,
        l_bound=10.0,
    )
    assert results == [(9, pytest.approx(1.5))]
    assert settled > 0


def test_refinement_improves_candidate_distance(line_graph):
    edge = next(e for e in line_graph.edges() if e.source == 2 and e.dest == 3)
    ot = _table(line_graph, {9: (edge.id, 0.5)})
    results, _ = refine_knn(
        line_graph,
        ot,
        [0] * line_graph.num_vertices,
        candidates={9: 8.0},  # stale overestimate
        unresolved=[(2, 1.0)],
        k=1,
        l_bound=8.0,
    )
    assert results[0][1] == pytest.approx(1.5)


def test_zero_radius_skipped(line_graph):
    ot = _table(line_graph, {})
    results, settled = refine_knn(
        line_graph,
        ot,
        [0] * line_graph.num_vertices,
        candidates={1: 2.0},
        unresolved=[(3, 5.0)],  # radius = l - 5 = 0
        k=1,
        l_bound=5.0,
    )
    assert settled == 0
    assert results == [(1, 2.0)]


def test_infinite_candidates_filtered(line_graph):
    ot = _table(line_graph, {})
    results, _ = refine_knn(
        line_graph,
        ot,
        [0] * line_graph.num_vertices,
        candidates={1: float("inf"), 2: 1.0},
        unresolved=[],
        k=2,
        l_bound=float("inf"),
    )
    assert results == [(2, 1.0)]


def test_result_sorted_and_truncated(line_graph):
    ot = _table(line_graph, {})
    results, _ = refine_knn(
        line_graph,
        ot,
        [0] * line_graph.num_vertices,
        candidates={1: 3.0, 2: 1.0, 3: 2.0},
        unresolved=[],
        k=2,
        l_bound=3.0,
    )
    assert results == [(2, 1.0), (3, 2.0)]
