"""Unit tests for the X-shuffle combinatorics (Section IV-D)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mu import (
    cover_set,
    covers,
    lam,
    max_exclusive_set_size,
    mu,
    shuffle_position,
    x_distance,
)
from repro.errors import ConfigError


def test_x_distance_paper_example():
    """The paper's example: X(10, 1) = 2."""
    assert x_distance(10, 1) == 2


def test_x_distance_basic_cases():
    assert x_distance(0, 0) == 0
    assert x_distance(0b1010, 0b1010) == 0
    assert x_distance(0, 0b111) == 1  # one run of 1s
    assert x_distance(0, 0b101) == 2
    assert x_distance(0, 0b10101) == 3


def test_x_distance_rejects_negative():
    with pytest.raises(ConfigError):
        x_distance(-1, 0)


def test_mu_matches_paper_values():
    """Theorem 1: bundles 16, 32, 64, 128 -> mu = 2, 4, 8, 16."""
    assert mu(4) == 2
    assert mu(5) == 4
    assert mu(6) == 8
    assert mu(7) == 16


def test_mu_small_bundles_fall_back_to_brute_force():
    assert mu(1) == max_exclusive_set_size(1)
    assert mu(2) == max_exclusive_set_size(2)
    assert mu(3) == max_exclusive_set_size(3)


def test_mu_eta4_matches_brute_force():
    """For 16 threads the formula and exhaustive search must agree."""
    assert mu(4) == max_exclusive_set_size(4)


def test_mu_rejects_bad_eta():
    with pytest.raises(ConfigError):
        mu(0)


def test_lam_increasing_in_small_i():
    # the coverage bound grows while overlaps stay small
    assert lam(5, 1) < lam(5, 2) < lam(5, 3) < lam(5, 4)


def test_cover_set_size_lemma2():
    """Lemma 2: |C(a)| = binom(eta+1, 2) for every thread a."""
    for eta in (4, 5):
        expected = math.comb(eta + 1, 2)
        for a in (0, 3, (1 << eta) - 1):
            assert len(cover_set(a, eta)) == expected


def test_covers_is_symmetric():
    for a in range(16):
        for b in range(16):
            assert covers(a, b) == covers(b, a)


def test_cover_intersections_lemma3():
    """Lemma 3: |C(a) & C(b)| is 6 when X(a,b)=2 and 0 when X(a,b)>2."""
    eta = 5
    checked_2 = checked_gt = 0
    for a in range(0, 32, 3):
        for b in range(32):
            if a == b:
                continue
            xd = x_distance(a, b)
            inter = cover_set(a, eta) & cover_set(b, eta)
            if xd == 2:
                assert len(inter) == 6
                checked_2 += 1
            elif xd > 2:
                assert len(inter) == 0
                checked_gt += 1
    assert checked_2 > 0 and checked_gt > 0


def test_triple_cover_lemma4():
    """Lemma 4: a pairwise x-distance-2 triple covers exactly 1 common
    thread."""
    eta = 5
    found = 0
    threads = range(32)
    for a in threads:
        for b in range(a + 1, 32):
            if x_distance(a, b) != 2:
                continue
            for c in range(b + 1, 32):
                if x_distance(a, c) == 2 and x_distance(b, c) == 2:
                    common = (
                        cover_set(a, eta) & cover_set(b, eta) & cover_set(c, eta)
                    )
                    assert len(common) <= 1
                    found += len(common)
        if found > 3:
            break
    assert found > 0


def test_shuffle_position_theorem2():
    """Theorem 2: after k shuffles an unreplaced message sits at
    alpha XOR sum 2^(eta-i)."""
    eta = 4
    for alpha in (0, 5, 15):
        pos = alpha
        acc = 0
        for k in range(1, eta + 1):
            acc ^= 1 << (eta - k)
            assert shuffle_position(alpha, k, eta) == alpha ^ acc


def test_shuffle_position_bounds():
    with pytest.raises(ConfigError):
        shuffle_position(0, 9, 4)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15))
def test_cover_iff_xdistance_one(a, b):
    """Lemma 1 (property form)."""
    if a != b:
        assert covers(a, b) == (x_distance(a, b) == 1)
