"""Unit tests for bucketed message lists and the lock protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message_list import Bucket, MessageList
from repro.core.messages import Message
from repro.errors import CapacityError, CleaningLockError


def _msg(obj: int, t: float) -> Message:
    return Message(obj, 0, 0.0, t)


def test_append_fills_buckets_in_order():
    lst = MessageList(capacity=3)
    for i in range(7):
        lst.append(_msg(i, float(i)))
    assert lst.num_messages == 7
    assert lst.num_buckets == 3
    sizes = [b.n for b in lst.buckets()]
    assert sizes == [3, 3, 1]


def test_messages_chronological():
    lst = MessageList(capacity=2)
    for i in range(5):
        lst.append(_msg(i, float(i)))
    times = [m.t for m in lst.messages()]
    assert times == sorted(times)


def test_bucket_t_is_latest():
    lst = MessageList(capacity=4)
    for i in range(4):
        lst.append(_msg(i, float(i)))
    bucket = next(lst.buckets())
    assert bucket.t == 3.0


def test_bucket_capacity_enforced():
    b = Bucket(capacity=1)
    b.append(_msg(0, 0.0))
    with pytest.raises(CapacityError):
        b.append(_msg(1, 1.0))


def test_invalid_capacity():
    with pytest.raises(CapacityError):
        MessageList(capacity=0)


def test_lock_appends_fresh_tail():
    lst = MessageList(capacity=2)
    lst.append(_msg(0, 0.0))
    lst.lock_for_cleaning()
    assert lst.locked
    # new messages land after the lock pointer
    lst.append(_msg(1, 1.0))
    live = lst.locked_buckets(t_now=10.0, t_delta=100.0)
    assert sum(b.n for b in live) == 1  # only the pre-lock message


def test_lock_on_empty_list():
    lst = MessageList(capacity=2)
    lst.lock_for_cleaning()
    assert lst.locked  # the pass owns the list even with nothing frozen
    assert lst.locked_buckets(0.0, 10.0) == []
    assert lst.release_cleaned() == 0


def test_stale_buckets_pruned():
    """Buckets whose newest message is older than t_now - t_delta are
    discarded unread (Section IV-B1)."""
    lst = MessageList(capacity=2)
    lst.append(_msg(0, 0.0))
    lst.append(_msg(1, 1.0))  # bucket 1: t=1
    lst.append(_msg(2, 50.0))  # bucket 2: t=50
    lst.lock_for_cleaning()
    live = lst.locked_buckets(t_now=60.0, t_delta=20.0)
    assert len(live) == 1
    assert live[0].t == 50.0


def test_release_cleaned_drops_processed():
    lst = MessageList(capacity=2)
    for i in range(5):
        lst.append(_msg(i, float(i)))
    lst.lock_for_cleaning()
    lst.append(_msg(9, 9.0))  # arrives during cleaning
    dropped = lst.release_cleaned()
    assert dropped == 5
    assert not lst.locked
    assert [m.obj for m in lst.messages()] == [9]


def test_release_without_lock_rejected():
    """Releasing with p_l unset used to walk to the null pointer and
    destroy every cached message; now it is a protocol violation."""
    lst = MessageList(capacity=2)
    lst.append(_msg(0, 0.0))
    with pytest.raises(CleaningLockError):
        lst.release_cleaned()  # lock never taken: p_l is None
    assert lst.num_messages == 1


def test_bucket_t_is_max_not_last():
    """Regression: removal markers and skewed client clocks append out
    of order; ``Bucket.t`` must be the max so stale-pruning never
    discards a bucket that still holds a fresh message."""
    lst = MessageList(capacity=3)
    lst.append(_msg(1, 10.0))
    lst.append(_msg(2, 5.0))  # skewed clock: older timestamp arrives later
    lst.append(Message(1, None, None, 1.0))  # removal marker, older still
    bucket = next(lst.buckets())
    assert bucket.t == 10.0  # not 1.0, the last message's timestamp
    lst.lock_for_cleaning()
    # cutoff 7.0: the bucket holds a fresh message (t=10) and must ship
    live = lst.locked_buckets(t_now=12.0, t_delta=5.0)
    assert len(live) == 1


def test_nested_lock_rejected_and_first_lock_intact():
    """Regression: a second ``lock_for_cleaning`` silently advanced
    ``p_l`` past post-lock arrivals, and ``release_cleaned`` then
    destroyed messages no cleaner ever saw."""
    lst = MessageList(capacity=2)
    for i in range(3):
        lst.append(_msg(i, float(i)))
    lst.lock_for_cleaning()
    lst.append(_msg(7, 7.0))  # arrives during the cleaning pass
    with pytest.raises(CleaningLockError):
        lst.lock_for_cleaning()
    # the in-flight pass is undisturbed: release drops exactly the
    # frozen messages and the post-lock arrival survives
    assert lst.release_cleaned() == 3
    assert [m.obj for m in lst.messages()] == [7]


def test_prepend_snapshot_on_locked_list_survives_release():
    """Regression: prepending a compacted snapshot onto a locked list
    inserted it before ``p_l``, so the following ``release_cleaned``
    discarded the snapshot (verified: list ended up empty)."""
    lst = MessageList(capacity=2)
    for i in range(4):
        lst.append(_msg(i, float(i)))
    lst.lock_for_cleaning()
    lst.append(_msg(9, 9.0))  # post-lock arrival
    # a compacted snapshot lands while the lock is still held
    lst.prepend_snapshot([_msg(100, 3.5), _msg(101, 3.6)])
    dropped = lst.release_cleaned()
    assert dropped == 4  # only the frozen pre-lock messages
    assert [m.obj for m in lst.messages()] == [100, 101, 9]


def test_prepend_snapshot_on_locked_empty_list_survives_release():
    lst = MessageList(capacity=2)
    lst.lock_for_cleaning()
    lst.prepend_snapshot([_msg(1, 1.0)])
    assert lst.release_cleaned() == 0
    assert [m.obj for m in lst.messages()] == [1]


def test_prepend_snapshot_after_fault_abort_relock():
    """The fault-abort path: a cleaning pass dies (unlock_abort), a
    retry re-locks, and its compacted snapshot must survive the retry's
    release even though it is prepended while the lock is held."""
    lst = MessageList(capacity=2)
    for i in range(3):
        lst.append(_msg(i, float(i)))
    lst.lock_for_cleaning()
    lst.unlock_abort()  # GPU fault: frozen buckets rejoin the live list
    assert lst.num_messages == 3
    lst.lock_for_cleaning()  # the retry
    frozen = [m for b in lst.locked_buckets(1e9, 1e12) for m in b.messages]
    assert len(frozen) == 3
    lst.append(_msg(9, 9.0))  # arrives mid-retry
    lst.prepend_snapshot([_msg(2, 2.0)])  # compacted result, lock held
    lst.release_cleaned()
    assert [m.obj for m in lst.messages()] == [2, 9]


def test_prepend_snapshot_goes_before_head():
    lst = MessageList(capacity=2)
    lst.lock_for_cleaning()
    lst.append(_msg(5, 10.0))
    lst.release_cleaned()
    lst.prepend_snapshot([_msg(1, 1.0), _msg(2, 2.0), _msg(3, 3.0)])
    objs = [m.obj for m in lst.messages()]
    assert objs == [1, 2, 3, 5]


def test_prepend_snapshot_empty_noop():
    lst = MessageList(capacity=2)
    lst.prepend_snapshot([])
    assert lst.num_messages == 0


def test_prepend_snapshot_on_empty_list_sets_tail():
    lst = MessageList(capacity=2)
    lst.prepend_snapshot([_msg(1, 1.0)])
    lst.append(_msg(2, 2.0))  # must go after the snapshot
    assert [m.obj for m in lst.messages()] == [1, 2]


def test_size_bytes_grows_with_buckets():
    lst = MessageList(capacity=4)
    empty = lst.size_bytes()
    for i in range(5):
        lst.append(_msg(i, float(i)))
    assert lst.size_bytes() > empty


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0.0, 100.0), min_size=0, max_size=60), st.integers(1, 8))
def test_no_message_lost_through_lock_cycle(times, capacity):
    """Property: lock -> clean -> release -> prepend keeps exactly the
    snapshot plus post-lock arrivals, in order."""
    times = sorted(times)
    lst = MessageList(capacity=capacity)
    for i, t in enumerate(times):
        lst.append(_msg(i, t))
    lst.lock_for_cleaning()
    frozen = [m for b in lst.locked_buckets(1e9, 1e12) for m in b.messages]
    assert len(frozen) == len(times)
    lst.append(_msg(999, 1e9))
    lst.release_cleaned()
    lst.prepend_snapshot(frozen)
    recovered = [m.obj for m in lst.messages()]
    assert recovered == [i for i in range(len(times))] + [999]
