"""End-to-end correctness tests for kNN query processing (Algorithm 4).

The headline property: G-Grid answers equal the brute-force Dijkstra
oracle's distance multisets on random networks, objects and queries.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import QueryError
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance


def _oracle(graph, locations, query, k):
    dist = multi_source_dijkstra(graph, entry_costs(graph, query))
    scored = sorted(
        location_distance(graph, dist, query, loc) for loc in locations.values()
    )
    return [d for d in scored if d < float("inf")][:k]


def _populate(graph, index, rng, objects, rounds):
    locations = {}
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
        locations[obj] = loc
        index.ingest(Message(obj, loc.edge_id, loc.offset, 1.0))
    t = 1.0
    for _ in range(rounds):
        t += 1.0
        for obj in rng.sample(range(objects), max(1, objects // 3)):
            e = rng.randrange(graph.num_edges)
            loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
            locations[obj] = loc
            index.ingest(Message(obj, loc.edge_id, loc.offset, t))
    return locations, t


def test_exact_answers_on_medium_graph(medium_graph, fast_config):
    rng = random.Random(11)
    index = GGridIndex(medium_graph, fast_config)
    locations, t = _populate(medium_graph, index, rng, objects=50, rounds=6)
    for _ in range(15):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        for k in (1, 4, 10):
            got = index.knn(q, k, t_now=t).distances()
            want = _oracle(medium_graph, locations, q, k)
            assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6))
def test_exact_answers_property(seed):
    """Property: random graph + random moves + random query == oracle."""
    rng = random.Random(seed)
    graph = grid_road_network(7, 7, seed=seed % 13)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=4))
    locations, t = _populate(graph, index, rng, objects=20, rounds=4)
    e = rng.randrange(graph.num_edges)
    q = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
    k = rng.choice((1, 3, 7))
    got = index.knn(q, k, t_now=t).distances()
    want = _oracle(graph, locations, q, k)
    assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_repeated_queries_stay_exact(medium_graph, fast_config):
    """Cleaning mutates the message lists; answers must stay exact when
    the same region is queried repeatedly with updates in between."""
    rng = random.Random(5)
    index = GGridIndex(medium_graph, fast_config)
    locations, t = _populate(medium_graph, index, rng, objects=30, rounds=2)
    q = NetworkLocation(0, 0.1)
    for step in range(5):
        t += 1.0
        obj = rng.randrange(30)
        e = rng.randrange(medium_graph.num_edges)
        loc = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        locations[obj] = loc
        index.ingest(Message(obj, loc.edge_id, loc.offset, t))
        got = index.knn(q, 5, t_now=t).distances()
        want = _oracle(medium_graph, locations, q, 5)
        assert [round(x, 9) for x in got] == [round(x, 9) for x in want]


def test_k_larger_than_objects(medium_graph, fast_config):
    index = GGridIndex(medium_graph, fast_config)
    index.ingest(Message(1, 0, 0.1, 1.0))
    index.ingest(Message(2, 1, 0.1, 1.0))
    answer = index.knn(NetworkLocation(0, 0.0), k=10, t_now=1.0)
    assert len(answer.entries) == 2
    assert answer.used_fallback


def test_query_with_no_objects(medium_graph, fast_config):
    index = GGridIndex(medium_graph, fast_config)
    answer = index.knn(NetworkLocation(0, 0.0), k=3, t_now=1.0)
    assert answer.entries == []
    assert answer.used_fallback


def test_invalid_k_rejected(medium_graph, fast_config):
    index = GGridIndex(medium_graph, fast_config)
    with pytest.raises(QueryError):
        index.knn(NetworkLocation(0, 0.0), k=0)


def test_invalid_location_rejected(medium_graph, fast_config):
    from repro.errors import GraphError

    index = GGridIndex(medium_graph, fast_config)
    with pytest.raises(GraphError):
        index.knn(NetworkLocation(0, 99.0), k=1)


def test_query_at_object_location_distance_zero(medium_graph, fast_config):
    index = GGridIndex(medium_graph, fast_config)
    index.ingest(Message(1, 4, 0.5, 1.0))
    answer = index.knn(NetworkLocation(4, 0.5), k=1, t_now=1.0)
    assert answer.entries[0].obj == 1
    assert answer.entries[0].distance == pytest.approx(0.0)


def test_answer_diagnostics_populated(medium_graph, fast_config):
    rng = random.Random(7)
    index = GGridIndex(medium_graph, fast_config)
    _populate(medium_graph, index, rng, objects=40, rounds=3)
    answer = index.knn(NetworkLocation(0, 0.0), k=8)
    assert answer.cells_cleaned > 0
    assert answer.candidates >= 8
    assert "select" in answer.cpu_seconds


def test_rho_affects_cells_cleaned(medium_graph):
    rng = random.Random(9)
    small = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4, rho=1.2000001))
    big = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4, rho=3.0))
    for index in (small, big):
        rng2 = random.Random(9)
        _populate(medium_graph, index, rng2, objects=40, rounds=2)
    a = small.knn(NetworkLocation(0, 0.0), k=8)
    b = big.knn(NetworkLocation(0, 0.0), k=8)
    assert b.cells_cleaned >= a.cells_cleaned
