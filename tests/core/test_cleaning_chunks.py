"""Multi-chunk cleaning: correctness across the pipelined-transfer path.

The cleaner ships buckets to the device in chunks of 4 bundles; these
tests force workloads big enough that one cleaning pass spans several
chunks (and several bundles per object), exercising the cross-chunk
intermediate-table indexing and the pipelined stream.
"""

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message


def _flooded_index(graph, eta=3, delta_b=2, messages=900, objects=12, seed=5):
    """Tiny buckets + many messages -> hundreds of buckets per clean."""
    index = GGridIndex(graph, GGridConfig(eta=eta, delta_b=delta_b, t_delta=1e9))
    rng = random.Random(seed)
    for i in range(messages):
        obj = rng.randrange(objects)
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), float(i)))
    return index


def test_multi_chunk_cleaning_matches_object_table(medium_graph):
    index = _flooded_index(medium_graph)
    # sanity: this pass really spans multiple chunks
    chunk_buckets = 4 * index.config.bundle_size
    total_buckets = sum(m.num_buckets for m in index.lists.values())
    assert total_buckets > 2 * chunk_buckets

    result = index.clean_cells(set(range(index.grid.num_cells)), t_now=1e6)
    for cell in range(index.grid.num_cells):
        assert frozenset(result.occupants.get(cell, {})) == (
            index.object_table.objects_in_cell(cell)
        )


def test_multi_chunk_latest_message_wins(medium_graph):
    """One object's messages spread across many chunks: the last one
    (highest t) must be the cleaned location."""
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=1, t_delta=1e9))
    edge = 0
    for i in range(300):  # 300 buckets -> ~10 chunks at 4x8 buckets each
        index.ingest(Message(7, edge, 0.001 * i, float(i)))
    cell = index.grid.cell_of_edge(edge)
    result = index.clean_cells({cell}, t_now=1e6)
    assert result.occupants[cell][7].t == 299.0
    assert result.occupants[cell][7].offset == pytest.approx(0.299)


def test_multi_chunk_pipelining_saves_time(medium_graph):
    """With several chunks in flight the stream hides transfer time."""
    index = _flooded_index(medium_graph)
    index.clean_cells(set(range(index.grid.num_cells)), t_now=1e6)
    assert index.stats.pipelined_saved_s > 0


def test_queries_exact_on_flooded_index(medium_graph):
    from repro.baselines.naive import NaiveKnnIndex
    from repro.roadnet.location import NetworkLocation

    rng = random.Random(9)
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=2, t_delta=1e9))
    naive = NaiveKnnIndex(medium_graph)
    for i in range(600):
        obj = rng.randrange(15)
        e = rng.randrange(medium_graph.num_edges)
        m = Message(obj, e, rng.uniform(0, medium_graph.edge(e).weight), float(i))
        index.ingest(m)
        naive.ingest(m)
    q = NetworkLocation(0, 0.1)
    got = index.knn(q, 8, t_now=1e6).distances()
    want = naive.knn(q, 8, t_now=1e6).distances()
    assert [round(x, 9) for x in got] == [round(x, 9) for x in want]
