"""Tests for batched multi-query processing (G-Grid vs G-Grid (L))."""

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import QueryError
from repro.roadnet.location import NetworkLocation


def _populated_index(graph, seed=3, objects=50):
    rng = random.Random(seed)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8))
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), 1.0))
    for t in range(2, 6):
        for obj in rng.sample(range(objects), objects // 3):
            e = rng.randrange(graph.num_edges)
            index.ingest(
                Message(obj, e, rng.uniform(0, graph.edge(e).weight), float(t))
            )
    return index, rng


def _random_queries(graph, rng, count, ks=(1, 4, 8)):
    queries = []
    for _ in range(count):
        e = rng.randrange(graph.num_edges)
        loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
        queries.append((loc, rng.choice(ks)))
    return queries


def test_batch_matches_individual_queries(medium_graph):
    index, rng = _populated_index(medium_graph)
    queries = _random_queries(medium_graph, rng, count=6)
    batch = index.knn_batch(queries, t_now=6.0)
    for (loc, k), answer in zip(queries, batch):
        single = index.knn(loc, k, t_now=6.0)
        assert [round(d, 9) for d in answer.distances()] == [
            round(d, 9) for d in single.distances()
        ]


def test_batch_shares_cleaning_work(medium_graph):
    """Nearby queries in one batch must clean fewer cells (and ship
    fewer bytes) than the same queries issued individually."""
    index_a, rng = _populated_index(medium_graph, seed=7)
    index_b, _ = _populated_index(medium_graph, seed=7)
    # co-located queries: same edge, different k
    queries = [(NetworkLocation(0, 0.1), 4), (NetworkLocation(0, 0.3), 4),
               (NetworkLocation(1, 0.2), 4)]

    before = index_a.stats.snapshot()
    index_a.knn_batch(queries, t_now=6.0)
    batched = index_a.stats.diff(before)

    before = index_b.stats.snapshot()
    for loc, k in queries:
        index_b.knn(loc, k, t_now=6.0)
    individual = index_b.stats.diff(before)

    assert batched.bytes_h2d < individual.bytes_h2d
    assert batched.kernel_launches < individual.kernel_launches


def test_batch_of_one_equals_single(medium_graph):
    index, rng = _populated_index(medium_graph, seed=9)
    loc = NetworkLocation(2, 0.1)
    [batch] = index.knn_batch([(loc, 5)], t_now=6.0)
    single = index.knn(loc, 5, t_now=6.0)
    assert batch.distances() == pytest.approx(single.distances())


def test_empty_batch(medium_graph):
    index, _ = _populated_index(medium_graph)
    assert index.knn_batch([], t_now=6.0) == []


def test_batch_validates_inputs(medium_graph):
    index, _ = _populated_index(medium_graph)
    with pytest.raises(QueryError):
        index.knn_batch([(NetworkLocation(0, 0.0), 0)], t_now=6.0)


def test_batch_with_fallback_query(medium_graph):
    """A query needing more neighbours than objects falls back inside a
    batch without disturbing the others."""
    index, rng = _populated_index(medium_graph, objects=5)
    queries = [(NetworkLocation(0, 0.1), 3), (NetworkLocation(1, 0.1), 100)]
    answers = index.knn_batch(queries, t_now=6.0)
    assert len(answers[0].entries) == 3
    assert answers[1].used_fallback
    assert len(answers[1].entries) == 5
