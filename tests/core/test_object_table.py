"""Unit tests for the object table."""

import pytest

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.errors import UnknownObjectError


def _entry(cell: int, edge: int = 0, offset: float = 0.0, t: float = 0.0):
    return ObjectEntry(cell, edge, offset, t)


def test_put_and_get():
    ot = ObjectTable()
    ot.put(1, _entry(cell=3, edge=7, offset=0.5, t=2.0))
    e = ot.get(1)
    assert (e.cell, e.edge, e.offset, e.t) == (3, 7, 0.5, 2.0)
    assert 1 in ot and len(ot) == 1


def test_get_unknown_raises():
    with pytest.raises(UnknownObjectError):
        ObjectTable().get(42)


def test_try_get_returns_none():
    assert ObjectTable().try_get(42) is None


def test_cell_of():
    ot = ObjectTable()
    ot.put(1, _entry(cell=9))
    assert ot.cell_of(1) == 9


def test_move_updates_inverse_sets():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    ot.put(1, _entry(cell=5))
    assert ot.objects_in_cell(2) == frozenset()
    assert ot.objects_in_cell(5) == frozenset({1})


def test_same_cell_update_keeps_membership():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2, t=1.0))
    ot.put(1, _entry(cell=2, t=2.0))
    assert ot.objects_in_cell(2) == frozenset({1})
    assert ot.get(1).t == 2.0


def test_remove():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    ot.remove(1)
    assert 1 not in ot
    assert ot.objects_in_cell(2) == frozenset()


def test_remove_unknown_raises():
    with pytest.raises(UnknownObjectError):
        ObjectTable().remove(1)


def test_objects_snapshot_is_copy():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    snap = ot.objects()
    snap[99] = _entry(cell=0)
    assert 99 not in ot


def test_inverse_map_pruned_on_sweep():
    """Regression: an object sweeping across many cells must not leave a
    trail of empty sets in the inverse map — its size tracks the cells
    *currently* occupied, not every cell ever visited."""
    ot = ObjectTable()
    for cell in range(1000):
        ot.put(1, _entry(cell=cell))
    assert ot.num_tracked_cells() == 1
    assert ot.occupied_cells() == [999]


def test_inverse_map_pruned_on_remove():
    ot = ObjectTable()
    ot.put(1, _entry(cell=5))
    ot.put(2, _entry(cell=5))
    ot.remove(1)
    assert ot.num_tracked_cells() == 1
    ot.remove(2)
    assert ot.num_tracked_cells() == 0
    assert ot.occupied_cells() == []


def test_fleet_churn_bounds_tracked_cells():
    """Many objects relocating for many rounds: the map stays at the
    number of distinct occupied cells, independent of churn history."""
    import random

    ot = ObjectTable()
    rng = random.Random(3)
    for round_ in range(50):
        for obj in range(40):
            ot.put(obj, _entry(cell=rng.randrange(30), t=float(round_)))
        occupied = {ot.get(obj).cell for obj in range(40)}
        assert ot.num_tracked_cells() == len(occupied)


def test_cell_columns_sorted_and_consistent():
    ot = ObjectTable()
    ot.put(9, _entry(cell=2, edge=4, offset=0.25, t=1.0))
    ot.put(3, _entry(cell=2, edge=7, offset=0.5, t=2.0))
    ot.put(5, _entry(cell=1, edge=0, offset=0.0, t=3.0))
    cols = ot.cell_columns(2)
    assert cols.objs.tolist() == [3, 9]  # ascending object id
    assert cols.edges.tolist() == [7, 4]
    assert cols.offsets.tolist() == [0.5, 0.25]
    assert cols.ts.tolist() == [2.0, 1.0]
    assert ot.cell_columns(7) is None  # never occupied


def test_cell_columns_invalidated_by_moves():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2, t=1.0))
    assert ot.cell_columns(2).objs.tolist() == [1]
    ot.put(1, _entry(cell=3, t=2.0))  # move invalidates both cells
    assert ot.cell_columns(2) is None
    assert ot.cell_columns(3).objs.tolist() == [1]
    ot.put(1, _entry(cell=3, t=5.0))  # in-place re-report refreshes ts
    assert ot.cell_columns(3).ts.tolist() == [5.0]
    ot.remove(1)
    assert ot.cell_columns(3) is None


def test_size_bytes_linear_in_objects():
    ot = ObjectTable()
    for i in range(10):
        ot.put(i, _entry(cell=i))
    assert ot.size_bytes() == 10 * ot.size_bytes() // 10
    assert ot.size_bytes() > 0
