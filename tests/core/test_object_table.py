"""Unit tests for the object table."""

import pytest

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.errors import UnknownObjectError


def _entry(cell: int, edge: int = 0, offset: float = 0.0, t: float = 0.0):
    return ObjectEntry(cell, edge, offset, t)


def test_put_and_get():
    ot = ObjectTable()
    ot.put(1, _entry(cell=3, edge=7, offset=0.5, t=2.0))
    e = ot.get(1)
    assert (e.cell, e.edge, e.offset, e.t) == (3, 7, 0.5, 2.0)
    assert 1 in ot and len(ot) == 1


def test_get_unknown_raises():
    with pytest.raises(UnknownObjectError):
        ObjectTable().get(42)


def test_try_get_returns_none():
    assert ObjectTable().try_get(42) is None


def test_cell_of():
    ot = ObjectTable()
    ot.put(1, _entry(cell=9))
    assert ot.cell_of(1) == 9


def test_move_updates_inverse_sets():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    ot.put(1, _entry(cell=5))
    assert ot.objects_in_cell(2) == frozenset()
    assert ot.objects_in_cell(5) == frozenset({1})


def test_same_cell_update_keeps_membership():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2, t=1.0))
    ot.put(1, _entry(cell=2, t=2.0))
    assert ot.objects_in_cell(2) == frozenset({1})
    assert ot.get(1).t == 2.0


def test_remove():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    ot.remove(1)
    assert 1 not in ot
    assert ot.objects_in_cell(2) == frozenset()


def test_remove_unknown_raises():
    with pytest.raises(UnknownObjectError):
        ObjectTable().remove(1)


def test_objects_snapshot_is_copy():
    ot = ObjectTable()
    ot.put(1, _entry(cell=2))
    snap = ot.objects()
    snap[99] = _entry(cell=0)
    assert 99 not in ot


def test_size_bytes_linear_in_objects():
    ot = ObjectTable()
    for i in range(10):
        ot.put(i, _entry(cell=i))
    assert ot.size_bytes() == 10 * ot.size_bytes() // 10
    assert ot.size_bytes() > 0
