"""Unit and property tests for GPU_X_Shuffle (Algorithm 3).

The two guarantees the paper proves, tested empirically:

1. the latest message of every object always survives the shuffles and
   the mu(eta)-repeated racy table writes;
2. after one shuffle round the number of distinct surviving messages of
   any single object never exceeds mu(eta) (Theorem 1).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import CellMessage
from repro.core.mu import mu
from repro.core.xshuffle import (
    IntermediateTable,
    _clean_bundle,
    collect_kernel,
    shuffle_round,
    x_shuffle_kernel,
)
from repro.simgpu.device import SimGpu


def _msg(obj: int, t: float, cell: int = 0) -> CellMessage:
    return CellMessage(obj, cell, edge=0, offset=0.0, t=t)


def _run_kernel(buckets, eta, seed=0):
    gpu = SimGpu()
    bundle_size = 1 << eta
    num_bundles = -(-len(buckets) // bundle_size)
    table = IntermediateTable(num_bundles)
    processed = gpu.launch(
        "xshuffle",
        max(1, len(buckets)),
        x_shuffle_kernel,
        buckets,
        eta,
        table,
        0,
        random.Random(seed),
    )
    latest = gpu.launch("collect", max(1, len(table.slots)), collect_kernel, table)
    return processed, table, latest, gpu


def test_single_bucket_single_message():
    processed, _, latest, _ = _run_kernel([[_msg(7, 1.0)]], eta=3)
    assert processed == 1
    assert latest[7].t == 1.0


def test_latest_message_wins_within_bucket():
    bucket = [_msg(1, t) for t in (1.0, 5.0, 3.0)]
    _, _, latest, _ = _run_kernel([bucket], eta=3)
    assert latest[1].t == 5.0


def test_latest_message_wins_across_buckets():
    buckets = [[_msg(1, 1.0)], [_msg(1, 9.0)], [_msg(1, 4.0)], [_msg(2, 2.0)]]
    _, _, latest, _ = _run_kernel(buckets, eta=2)
    assert latest[1].t == 9.0
    assert latest[2].t == 2.0


def test_ragged_buckets_handled():
    buckets = [[_msg(1, 1.0), _msg(1, 2.0)], [], [_msg(2, 1.0)]]
    processed, _, latest, _ = _run_kernel(buckets, eta=2)
    assert processed == 3
    assert latest[1].t == 2.0


def test_removal_marker_loses_timestamp_tie():
    marker = CellMessage(1, 0, None, None, 5.0)
    real = CellMessage(1, 1, 3, 0.25, 5.0)
    _, _, latest, _ = _run_kernel([[marker], [real]], eta=2)
    assert not latest[1].is_removal


def test_kernel_charges_work():
    buckets = [[_msg(i, float(j)) for j in range(4)] for i in range(8)]
    *_, gpu = _run_kernel(buckets, eta=3)
    assert gpu.stats.shuffle_ops > 0
    assert gpu.stats.atomic_ops > 0
    assert gpu.stats.lane_ops > 0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(3, 5), st.integers(1, 6))
def test_latest_always_survives(seed, eta, num_objects):
    """Property: for random buckets, the newest message per object is
    exactly what GPU_Collect reports."""
    rng = random.Random(seed)
    bundle_size = 1 << eta
    n_buckets = rng.randrange(1, 3 * bundle_size)
    buckets = []
    truth = {}
    t = 0.0
    for _ in range(n_buckets):
        bucket = []
        for _ in range(rng.randrange(0, 6)):
            obj = rng.randrange(num_objects)
            t += 1.0
            bucket.append(_msg(obj, t))
            truth[obj] = t
        buckets.append(bucket)
    _, _, latest, _ = _run_kernel(buckets, eta, seed=seed)
    assert {o: m.t for o, m in latest.items()} == truth


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.integers(4, 5))
def test_survivors_bounded_by_mu(seed, eta):
    """Theorem 1 (empirical): one round of shuffles leaves at most
    mu(eta) distinct messages of a single object in the bundle."""
    rng = random.Random(seed)
    bundle_size = 1 << eta
    # one message per thread, all the same object, distinct timestamps
    times = list(range(bundle_size))
    rng.shuffle(times)
    lanes = shuffle_round([_msg(0, float(t)) for t in times], eta)
    survivors = {m.t for m in lanes}
    assert len(survivors) <= mu(eta)
    assert max(survivors) == float(bundle_size - 1)  # newest survived


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_racy_writes_converge(seed):
    """Property: the mu-repeated last-write-wins race always ends with
    the newest message stored, for any write ordering."""
    rng = random.Random(seed)
    eta = 4
    bundle_size = 1 << eta
    times = list(range(bundle_size))
    rng.shuffle(times)
    bundle = [[_msg(0, float(t))] for t in times]
    table = IntermediateTable(1)
    _clean_bundle(bundle, eta, mu(eta), table, 0, rng)
    assert table.slot(0, 0).t == float(bundle_size - 1)


def test_intermediate_table_slots():
    table = IntermediateTable(3)
    assert table.slot(5, 1) is None
    table.store(5, 1, _msg(5, 2.0))
    assert table.slot(5, 1).t == 2.0
    assert table.slot(5, 0) is None
    assert table.device_nbytes() > 0
