"""Unit and property tests for message cleaning (Algorithm 2).

The central invariant: after cleaning a set of cells, the reported
occupants equal the eagerly-maintained object table restricted to those
cells — lazy and eager agree.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network


def _index(graph, **kw) -> GGridIndex:
    return GGridIndex(graph, GGridConfig(eta=3, delta_b=4, **kw))


def _random_updates(graph, index, rng, objects, t0, rounds):
    t = t0
    for _ in range(rounds):
        t += 1.0
        for obj in rng.sample(range(objects), max(1, objects // 3)):
            e = rng.randrange(graph.num_edges)
            index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), t))
    return t


def test_cleaning_agrees_with_object_table(medium_graph):
    rng = random.Random(1)
    index = _index(medium_graph)
    t = _random_updates(medium_graph, index, rng, objects=40, t0=0.0, rounds=6)
    result = index.clean_cells(set(range(index.grid.num_cells)), t_now=t)
    for cell in range(index.grid.num_cells):
        want = index.object_table.objects_in_cell(cell)
        got = frozenset(result.occupants.get(cell, {}))
        assert got == want


def test_cleaning_idempotent(medium_graph):
    rng = random.Random(2)
    index = _index(medium_graph)
    t = _random_updates(medium_graph, index, rng, objects=30, t0=0.0, rounds=4)
    cells = set(range(index.grid.num_cells))
    first = index.clean_cells(cells, t_now=t)
    second = index.clean_cells(cells, t_now=t)
    assert first.occupants == second.occupants


def test_cleaning_compacts_lists(medium_graph):
    rng = random.Random(3)
    index = _index(medium_graph)
    t = _random_updates(medium_graph, index, rng, objects=30, t0=0.0, rounds=6)
    before = index.pending_messages()
    index.clean_cells(set(range(index.grid.num_cells)), t_now=t)
    after = index.pending_messages()
    assert after <= before
    assert after == index.num_objects  # exactly one snapshot message each


def test_cleaned_locations_are_latest(medium_graph):
    index = _index(medium_graph)
    e1, e2 = 0, 1
    index.ingest(Message(5, e1, 0.1, 1.0))
    index.ingest(Message(5, e1, 0.2, 2.0))
    result = index.clean_cells({index.grid.cell_of_edge(e1)}, t_now=3.0)
    cell = index.grid.cell_of_edge(e1)
    assert result.occupants[cell][5].offset == 0.2
    assert result.occupants[cell][5].t == 2.0


def test_moved_object_leaves_old_cell(medium_graph):
    index = _index(medium_graph)
    # find two edges whose sources land in different cells
    grid = index.grid
    e1 = 0
    e2 = next(
        e.id
        for e in medium_graph.edges()
        if grid.cell_of_edge(e.id) != grid.cell_of_edge(e1)
    )
    index.ingest(Message(5, e1, 0.1, 1.0))
    index.ingest(Message(5, e2, 0.3, 2.0))
    c1, c2 = grid.cell_of_edge(e1), grid.cell_of_edge(e2)
    result = index.clean_cells({c1, c2}, t_now=3.0)
    assert 5 not in result.occupants.get(c1, {})
    assert 5 in result.occupants[c2]


def test_moved_object_cleaning_old_cell_only(medium_graph):
    """Cleaning only the old cell must still drop the moved object (its
    removal marker plus the object-table check both say it left)."""
    index = _index(medium_graph)
    grid = index.grid
    e1 = 0
    e2 = next(
        e.id
        for e in medium_graph.edges()
        if grid.cell_of_edge(e.id) != grid.cell_of_edge(e1)
    )
    index.ingest(Message(5, e1, 0.1, 1.0))
    index.ingest(Message(5, e2, 0.3, 2.0))
    c1 = grid.cell_of_edge(e1)
    result = index.clean_cells({c1}, t_now=3.0)
    assert 5 not in result.occupants.get(c1, {})


def test_stale_objects_pruned_by_t_delta(medium_graph):
    """Pruning is bucket-granular (Section IV-B1): a bucket whose newest
    message predates ``t_now - t_delta`` is discarded unread, dropping
    objects that violated the update contract."""
    index = _index(medium_graph, t_delta=10.0)
    # fill a whole delta_b=4 bucket with old messages of object 1...
    for i in range(4):
        index.ingest(Message(1, 0, 0.1, 1.0 + i * 0.1))
    # ...then a fresh message of object 2 lands in the next bucket
    index.ingest(Message(2, 0, 0.2, 95.0))
    cell = index.grid.cell_of_edge(0)
    result = index.clean_cells({cell}, t_now=100.0)
    assert 1 not in result.occupants[cell]
    assert 2 in result.occupants[cell]
    assert result.messages_dropped >= 4


def test_contract_violator_expired_even_in_fresh_bucket(medium_graph):
    """Bucket-granular pruning may still *process* an over-age message
    sharing a bucket with a fresh one, but the object-table expiry drops
    the violator from the result regardless — the cleaned view and the
    object table always agree (Section II's t_delta contract)."""
    index = _index(medium_graph, t_delta=10.0)
    index.ingest(Message(1, 0, 0.1, 1.0))
    index.ingest(Message(2, 0, 0.2, 95.0))  # same delta_b=4 bucket
    cell = index.grid.cell_of_edge(0)
    result = index.clean_cells({cell}, t_now=100.0)
    assert 1 not in result.occupants[cell]
    assert 2 in result.occupants[cell]
    assert 1 not in index.object_table  # expired, not just hidden
    assert result.objects_expired == 1


def test_locked_list_skipped(medium_graph):
    """A list already under cleaning is skipped safely (p_l != p_h)."""
    index = _index(medium_graph)
    index.ingest(Message(1, 0, 0.1, 1.0))
    cell = index.grid.cell_of_edge(0)
    index.lists[cell].lock_for_cleaning()  # simulate a concurrent cleaner
    result = index.clean_cells({cell}, t_now=2.0)
    assert cell not in result.cells


def test_empty_cells_clean_to_empty(medium_graph):
    index = _index(medium_graph)
    result = index.clean_cells({0, 1, 2}, t_now=1.0)
    assert result.messages_processed == 0
    assert all(not objs for objs in result.occupants.values())


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_lazy_eager_agreement_property(seed):
    """Property: after any random update sequence and any cleaned cell
    subset, lazy == eager on those cells."""
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 7)
    index = _index(graph)
    t = _random_updates(graph, index, rng, objects=15, t0=0.0, rounds=5)
    cells = set(
        rng.sample(range(index.grid.num_cells), rng.randrange(1, index.grid.num_cells))
    )
    result = index.clean_cells(cells, t_now=t)
    for cell in cells:
        assert frozenset(result.occupants.get(cell, {})) == (
            index.object_table.objects_in_cell(cell)
        )


def test_gpu_transfer_accounted(medium_graph):
    index = _index(medium_graph)
    for i in range(20):
        index.ingest(Message(i, i % medium_graph.num_edges, 0.0, float(i)))
    before = index.stats.snapshot()
    index.clean_cells(set(range(index.grid.num_cells)), t_now=25.0)
    delta = index.stats.diff(before)
    assert delta.bytes_h2d > 0
    assert delta.bytes_d2h > 0
    assert delta.kernel_launches >= 2  # x-shuffle chunks + collect


# ----------------------------------------------------------------------
# host dedup: scalar loop vs columnar lexsort equivalence
# ----------------------------------------------------------------------
def _dedup_both(live_pairs):
    """Run _dedup_host through both code paths on the same input."""
    import pytest

    import repro.core.cleaning as cleaning_mod
    from repro.core.cleaning import CleaningResult, MessageCleaner
    from repro.simgpu.device import SimGpu

    cleaner = MessageCleaner(SimGpu(), GGridConfig())
    out = []
    for scalar_max in (10**9, 0):  # force scalar, then force columnar
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(cleaning_mod, "_HOST_DEDUP_SCALAR_MAX", scalar_max)
            out.append(cleaner._dedup_host(list(live_pairs), CleaningResult()))
    return out


def _bucketize(messages, cells, capacity=4):
    """Pack messages into (cell, Bucket) pairs of at most `capacity`."""
    from repro.core.message_list import Bucket

    pairs = []
    for start in range(0, len(messages), capacity):
        chunk = list(messages[start : start + capacity])
        pairs.append((cells[start // capacity % len(cells)], Bucket(capacity, chunk)))
    return pairs


def test_host_dedup_columnar_matches_scalar_adversarial():
    """Timestamp ties, removal markers and cross-bucket repeats must pick
    the same winner (first message carrying the max (t, flag) key) and
    produce the same dict insertion order on both paths."""
    msgs = [
        Message(1, 0, 0.1, 5.0),
        Message(2, None, None, 5.0),  # marker: loses the t=5.0 tie below
        Message(1, 3, 0.3, 5.0),  # same key as the first: first one wins
        Message(2, 4, 0.4, 5.0),
        Message(3, 5, 0.5, 1.0),
        Message(2, None, None, 6.0),  # newest for obj 2: marker wins
        Message(3, 6, 0.6, 1.0),  # tie again: first occurrence wins
        Message(4, 7, 0.7, 2.0),
    ]
    live_pairs = _bucketize(msgs, cells=[11, 22, 33], capacity=3)
    scalar, columnar = _dedup_both(live_pairs)
    assert columnar == scalar
    assert list(columnar) == list(scalar)  # insertion order too
    assert scalar[1].offset == 0.1 and scalar[1].cell == 11
    assert scalar[2].is_removal
    assert scalar[3].offset == 0.5


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6))
def test_host_dedup_columnar_matches_scalar_property(seed):
    rng = random.Random(seed)
    n = rng.randrange(1, 120)
    msgs = []
    for _ in range(n):
        obj = rng.randrange(8)
        t = float(rng.randrange(6))  # coarse times force many ties
        if rng.random() < 0.25:
            msgs.append(Message(obj, None, None, t))
        else:
            msgs.append(Message(obj, rng.randrange(20), rng.random(), t))
    cells = [rng.randrange(50) for _ in range(4)]
    live_pairs = _bucketize(msgs, cells, capacity=rng.randrange(1, 7))
    scalar, columnar = _dedup_both(live_pairs)
    assert columnar == scalar
    assert list(columnar) == list(scalar)
