"""Equivalence tests for the vectorised SDist backend."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.graph_grid import GraphGrid
from repro.core.messages import Message
from repro.core.sdist import get_sdist_kernel, sdist_kernel
from repro.core.sdist_vectorized import sdist_kernel_vectorized
from repro.errors import ConfigError
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation
from repro.simgpu.device import SimGpu


def _both(graph, grid, cells, seeds):
    results = []
    for kernel in (sdist_kernel, sdist_kernel_vectorized):
        gpu = SimGpu()
        elements = grid.elements_of_cells(cells)
        vertices = grid.vertices_of_cells(cells)
        results.append(
            gpu.launch(
                "sdist",
                max(1, len(elements)),
                kernel,
                elements,
                vertices,
                seeds,
                grid.config.delta_v,
                True,
            )
        )
    return results


def test_backends_agree(small_graph):
    grid = GraphGrid.build(small_graph, GGridConfig())
    cells = set(range(min(8, grid.num_cells)))
    seeds = {grid.vertices_of_cells(cells)[0]: 0.0}
    lockstep, vectorized = _both(small_graph, grid, cells, seeds)
    assert set(lockstep) == set(vectorized)
    for v in lockstep:
        assert lockstep[v] == pytest.approx(vectorized[v])


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_backends_agree_property(seed):
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 5)
    grid = GraphGrid.build(graph, GGridConfig())
    n = grid.num_cells
    cells = set(rng.sample(range(n), rng.randrange(2, min(12, n))))
    vertices = grid.vertices_of_cells(cells)
    if not vertices:
        return
    seeds = {rng.choice(vertices): rng.uniform(0, 2.0)}
    lockstep, vectorized = _both(graph, grid, cells, seeds)
    assert set(lockstep) == set(vectorized)
    for v in lockstep:
        assert lockstep[v] == pytest.approx(vectorized[v])


def test_get_sdist_kernel_resolution():
    assert get_sdist_kernel("lockstep") is sdist_kernel
    assert get_sdist_kernel("vectorized") is sdist_kernel_vectorized
    with pytest.raises(ConfigError):
        get_sdist_kernel("cuda")


def test_config_rejects_unknown_backend():
    with pytest.raises(ConfigError):
        GGridConfig(sdist_backend="metal")


def _launch(gpu, grid, kernel, elements, vertices, seeds):
    return gpu.launch(
        "sdist",
        max(1, len(elements)),
        kernel,
        elements,
        vertices,
        seeds,
        grid.config.delta_v,
        True,
    )


def test_slab_counter_identity(medium_graph):
    """Regression: the packed CellSlab fast path must charge exactly the
    work the per-launch re-flattening path charged, and return the same
    distances bit for bit.

    The slab's edge records follow the same (cell, vertex, record) order
    the legacy flatten produced, so ``np.minimum.at`` sees identical
    update sequences — any divergence in ``lane_ops`` or a single float
    means the layouts drifted apart.
    """
    grid = GraphGrid.build(medium_graph, GGridConfig())
    rng = random.Random(9)
    for trial in range(5):
        n = grid.num_cells
        cells = set(rng.sample(range(n), rng.randrange(2, min(12, n))))
        elements = grid.elements_of_cells(cells)
        vertices = grid.vertices_of_cells(cells)
        slab = grid.pack_of_cells(cells)
        assert len(slab) == len(elements)
        assert slab.vertex_list == vertices
        if not vertices:
            continue
        seeds = {rng.choice(vertices): rng.uniform(0, 2.0)}

        gpu_legacy, gpu_slab = SimGpu(), SimGpu()
        legacy = _launch(
            gpu_legacy, grid, sdist_kernel_vectorized, elements, vertices, seeds
        )
        packed = _launch(
            gpu_slab, grid, sdist_kernel_vectorized, slab, slab.vertex_list, seeds
        )
        assert packed == legacy  # bit-identical floats, same key set
        assert gpu_slab.stats.lane_ops == gpu_legacy.stats.lane_ops
        assert gpu_slab.stats.kernel_launches == gpu_legacy.stats.kernel_launches


def test_slab_feeds_lockstep_kernel_too(small_graph):
    """The lockstep kernel iterates the slab's lazily materialised
    elements; distances must match running it on the legacy list."""
    grid = GraphGrid.build(small_graph, GGridConfig())
    cells = set(range(min(6, grid.num_cells)))
    elements = grid.elements_of_cells(cells)
    slab = grid.pack_of_cells(cells)
    vertices = grid.vertices_of_cells(cells)
    seeds = {vertices[0]: 0.0}
    legacy = _launch(SimGpu(), grid, sdist_kernel, elements, vertices, seeds)
    packed = _launch(SimGpu(), grid, sdist_kernel, slab, slab.vertex_list, seeds)
    assert packed == legacy


def test_end_to_end_answers_identical(medium_graph):
    """Full kNN answers must not depend on the backend."""
    rng = random.Random(5)
    answers = []
    for backend in ("lockstep", "vectorized"):
        index = GGridIndex(
            medium_graph, GGridConfig(eta=3, delta_b=8, sdist_backend=backend)
        )
        rng2 = random.Random(5)
        for obj in range(30):
            e = rng2.randrange(medium_graph.num_edges)
            index.ingest(
                Message(obj, e, rng2.uniform(0, medium_graph.edge(e).weight), 1.0)
            )
        got = []
        for _ in range(5):
            e = rng2.randrange(medium_graph.num_edges)
            q = NetworkLocation(e, rng2.uniform(0, medium_graph.edge(e).weight))
            got.append([round(x, 9) for x in index.knn(q, 6, t_now=1.0).distances()])
        answers.append(got)
    assert answers[0] == answers[1]
