"""The canonical result order — ascending distance, then ascending id.

Distance ties are real in road networks (co-located objects, symmetric
grids), and every execution path — GPU_First_k, CPU refinement, the
exact-Dijkstra fallback, range queries, batched epochs — must break them
identically or "batched == sequential == oracle" is ill-defined.  These
tests pin the order at the :mod:`repro.core.ordering` primitive, at the
kernel, and at every user-facing query path.
"""

from __future__ import annotations

import random

from repro.config import GGridConfig
from repro.core import GGridIndex
from repro.core.messages import Message
from repro.core.ordering import rank_results, result_sort_key
from repro.core.sdist import first_k_kernel
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation
from repro.simgpu.kernel import HostContext

from tests.conftest import random_location

_INF = float("inf")


# ----------------------------------------------------------------------
# the primitive
# ----------------------------------------------------------------------
def test_result_sort_key_orders_distance_then_id():
    items = [(3, 2.0), (9, 1.0), (1, 2.0), (7, 1.0)]
    assert sorted(items, key=result_sort_key) == [(7, 1.0), (9, 1.0), (1, 2.0), (3, 2.0)]


def test_rank_results_drops_unreachable_and_truncates():
    items = [(5, _INF), (2, 3.0), (8, 1.0), (4, 1.0), (6, _INF), (1, 2.0)]
    assert rank_results(items) == [(4, 1.0), (8, 1.0), (1, 2.0), (2, 3.0)]
    assert rank_results(items, k=2) == [(4, 1.0), (8, 1.0)]
    assert rank_results(items, k=0) == []
    assert rank_results([]) == []


def test_rank_results_is_insertion_order_independent():
    items = [(obj, float(obj % 3)) for obj in range(12)]
    shuffled = list(items)
    random.Random(5).shuffle(shuffled)
    assert rank_results(shuffled) == rank_results(items)


# ----------------------------------------------------------------------
# the kernel
# ----------------------------------------------------------------------
def test_first_k_kernel_breaks_ties_by_id():
    distances = {9: 1.5, 2: 1.5, 7: 0.5, 4: 1.5, 11: 2.5}
    got = first_k_kernel(HostContext(), distances, 4)
    assert got == [(7, 0.5), (2, 1.5), (4, 1.5), (9, 1.5)]


# ----------------------------------------------------------------------
# the query paths
# ----------------------------------------------------------------------
def _tied_index():
    """Ids 9, 3, 7 co-located (ingested shuffled), plus background."""
    graph = grid_road_network(8, 8, seed=21)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8))
    spot = NetworkLocation(10, 0.5 * graph.edge(10).weight)
    for obj in (9, 3, 7):
        index.ingest(Message(obj, spot.edge_id, spot.offset, 1.0))
    rng = random.Random(2)
    for obj in range(30, 42):
        loc = random_location(graph, rng)
        index.ingest(Message(obj, loc.edge_id, loc.offset, 1.0))
    return graph, index


def _assert_canonical(pairs):
    assert pairs == sorted(pairs, key=result_sort_key)


def test_knn_returns_tied_ids_ascending():
    graph, index = _tied_index()
    query = NetworkLocation(10, 0.0)
    got = [(e.obj, e.distance) for e in index.knn(query, 3).entries]
    assert [obj for obj, _ in got] == [3, 7, 9]
    assert len({d for _, d in got}) == 1


def test_knn_batch_returns_tied_ids_ascending():
    graph, index = _tied_index()
    queries = [(NetworkLocation(10, 0.0), 3), (NetworkLocation(0, 0.0), 5)]
    for answer in index.knn_batch(queries):
        _assert_canonical([(e.obj, e.distance) for e in answer.entries])
    got = index.knn_batch(queries)[0]
    assert [e.obj for e in got.entries] == [3, 7, 9]


def test_range_query_returns_tied_ids_ascending():
    graph, index = _tied_index()
    answer = index.range_query(NetworkLocation(10, 0.0), 50.0)
    pairs = [(e.obj, e.distance) for e in answer.entries]
    assert len(pairs) >= 3
    _assert_canonical(pairs)


def test_fallback_path_returns_tied_ids_ascending():
    """k > |objects| answers from the exact-Dijkstra fallback; order must
    still be canonical."""
    graph = grid_road_network(8, 8, seed=22)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8))
    spot = NetworkLocation(4, 0.25 * graph.edge(4).weight)
    for obj in (8, 1, 5):
        index.ingest(Message(obj, spot.edge_id, spot.offset, 1.0))
    answer = index.knn(NetworkLocation(0, 0.0), 10)
    assert answer.used_fallback
    assert [e.obj for e in answer.entries] == [1, 5, 8]
    _assert_canonical([(e.obj, e.distance) for e in answer.entries])
