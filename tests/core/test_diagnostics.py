"""Tests for the index diagnostics module."""

import json
import random

from repro.config import GGridConfig
from repro.core.diagnostics import (
    BacklogStats,
    OccupancyStats,
    PartitionQuality,
    snapshot,
)
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message


def _index(graph, messages=30):
    rng = random.Random(6)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=4))
    for i in range(messages):
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(i % 10, e, 0.0, float(i)))
    return index


def test_backlog_counts_messages(medium_graph):
    index = _index(medium_graph, messages=30)
    stats = BacklogStats.of(index)
    assert stats.total_messages == index.pending_messages()
    assert stats.max_cell_backlog >= 1
    assert stats.cells_with_backlog <= index.grid.num_cells
    assert stats.buckets_allocated >= stats.cells_with_backlog


def test_backlog_empty_index(medium_graph):
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4))
    stats = BacklogStats.of(index)
    assert stats.total_messages == 0
    assert stats.mean_cell_backlog == 0.0


def test_occupancy_tracks_object_table(medium_graph):
    index = _index(medium_graph)
    stats = OccupancyStats.of(index)
    assert stats.objects == index.num_objects == 10
    assert stats.occupied_cells >= 1
    assert stats.max_cell_objects >= 1
    assert stats.mean_cell_objects > 0


def test_occupancy_scans_only_occupied_cells(medium_graph):
    """Regression: the snapshot must not probe every grid cell (it used
    to iterate ``range(grid.num_cells)``, O(grid) on sparse grids)."""
    index = _index(medium_graph)
    table = index.object_table
    occupied = set(table.occupied_cells())
    assert 1 <= len(occupied) < index.grid.num_cells  # sparse, so it matters

    queried: list[int] = []
    original = table.objects_in_cell

    def counting(cell):
        queried.append(cell)
        return original(cell)

    table.objects_in_cell = counting  # instance attribute shadows the method
    try:
        stats = OccupancyStats.of(index)
    finally:
        del table.objects_in_cell
    assert stats.objects == index.num_objects
    assert set(queried) == occupied
    assert len(queried) == len(occupied)


def test_occupied_cells_filters_vacated_cells(medium_graph):
    from repro.roadnet.location import NetworkLocation

    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4))
    index.bulk_load({1: NetworkLocation(0, 0.0)}, t=0.0)
    (cell,) = index.object_table.occupied_cells()
    # move the object somewhere else and materialise the move
    far_edge = medium_graph.num_edges - 1
    index.ingest(Message(1, far_edge, 0.0, t=1.0))
    index.clean_cells(set(range(index.grid.num_cells)))
    occupied = index.object_table.occupied_cells()
    new_cell = index.grid.cell_of_edge(far_edge)
    if new_cell != cell:  # the retained-empty-set case
        assert occupied == [new_cell]
    stats = OccupancyStats.of(index)
    assert stats.occupied_cells == 1


def test_partition_quality(medium_graph):
    index = _index(medium_graph)
    quality = PartitionQuality.of(index)
    assert quality.cells == index.grid.num_cells
    assert 0.0 < quality.internal_edge_fraction < 1.0
    assert quality.max_cell_size <= index.config.delta_c


def test_snapshot_json_serialisable(medium_graph):
    index = _index(medium_graph)
    record = snapshot(index)
    text = json.dumps(record)
    back = json.loads(text)
    assert back["objects"] == 10
    assert back["backlog_messages"] == index.pending_messages()
    assert back["gpu_bytes"] >= 0


def test_snapshot_reflects_cleaning(medium_graph):
    index = _index(medium_graph)
    before = snapshot(index)
    index.clean_cells(set(range(index.grid.num_cells)))
    after = snapshot(index)
    assert after["backlog_messages"] <= before["backlog_messages"]
    assert after["gpu_kernels"] > before["gpu_kernels"]
