"""Tests for the range-query extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import QueryError
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance


def _oracle(graph, locations, query, radius):
    dist = multi_source_dijkstra(graph, entry_costs(graph, query))
    hits = []
    for obj, loc in locations.items():
        d = location_distance(graph, dist, query, loc)
        if d <= radius:
            hits.append((round(d, 9), obj))
    hits.sort()
    return hits


def _populate(graph, index, rng, objects=40, rounds=4):
    locations = {}
    t = 1.0
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
        locations[obj] = loc
        index.ingest(Message(obj, loc.edge_id, loc.offset, t))
    for _ in range(rounds):
        t += 1.0
        for obj in rng.sample(range(objects), objects // 3):
            e = rng.randrange(graph.num_edges)
            loc = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
            locations[obj] = loc
            index.ingest(Message(obj, loc.edge_id, loc.offset, t))
    return locations, t


def test_range_matches_oracle(medium_graph):
    rng = random.Random(13)
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    locations, t = _populate(medium_graph, index, rng)
    for _ in range(12):
        e = rng.randrange(medium_graph.num_edges)
        q = NetworkLocation(e, rng.uniform(0, medium_graph.edge(e).weight))
        for radius in (0.5, 2.0, 5.0):
            answer = index.range_query(q, radius, t_now=t)
            got = [(round(x.distance, 9), x.obj) for x in answer.entries]
            assert got == _oracle(medium_graph, locations, q, radius)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.3, 6.0))
def test_range_matches_oracle_property(seed, radius):
    rng = random.Random(seed)
    graph = grid_road_network(6, 6, seed=seed % 7)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=4))
    locations, t = _populate(graph, index, rng, objects=15, rounds=3)
    e = rng.randrange(graph.num_edges)
    q = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
    answer = index.range_query(q, radius, t_now=t)
    got = [(round(x.distance, 9), x.obj) for x in answer.entries]
    assert got == _oracle(graph, locations, q, radius)


def test_range_sorted_ascending(medium_graph):
    rng = random.Random(14)
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    _populate(medium_graph, index, rng)
    answer = index.range_query(NetworkLocation(0, 0.0), 4.0)
    dists = answer.distances()
    assert dists == sorted(dists)


def test_range_empty_result(medium_graph):
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    # one far-away object, tiny radius around the query
    index.ingest(Message(1, medium_graph.num_edges - 1, 0.0, 1.0))
    answer = index.range_query(NetworkLocation(0, 0.0), 1e-6, t_now=1.0)
    assert answer.entries == []


def test_range_grows_with_radius(medium_graph):
    rng = random.Random(15)
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    _populate(medium_graph, index, rng)
    small = index.range_query(NetworkLocation(0, 0.0), 1.0)
    large = index.range_query(NetworkLocation(0, 0.0), 6.0)
    assert len(large.entries) >= len(small.entries)
    assert large.cells_cleaned >= small.cells_cleaned


def test_range_rejects_bad_radius(medium_graph):
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    with pytest.raises(QueryError):
        index.range_query(NetworkLocation(0, 0.0), 0.0)
