"""Unit tests for index snapshots and object removal."""

import json
import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ReproError, UnknownObjectError
from repro.persistence import config_to_dict, load_index, save_index
from repro.roadnet.location import NetworkLocation


def _populated(graph, seed=4):
    rng = random.Random(seed)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8, rho=2.5))
    for obj in range(25):
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), 1.0))
    return index


def test_snapshot_roundtrip(medium_graph, tmp_path):
    index = _populated(medium_graph)
    path = save_index(index, tmp_path / "snap.json")
    restored = load_index(path)
    assert restored.num_objects == index.num_objects
    assert restored.config.rho == 2.5
    assert restored.graph.num_edges == medium_graph.num_edges
    for obj, entry in index.object_table.objects().items():
        got = restored.object_table.get(obj)
        assert (got.edge, got.offset, got.t) == (entry.edge, entry.offset, entry.t)


def test_restored_index_answers_identically(medium_graph, tmp_path):
    index = _populated(medium_graph)
    restored = load_index(save_index(index, tmp_path / "snap.json"))
    q = NetworkLocation(0, 0.1)
    a = index.knn(q, 5, t_now=2.0).distances()
    b = restored.knn(q, 5, t_now=2.0).distances()
    assert [round(x, 9) for x in a] == [round(x, 9) for x in b]


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999}))
    with pytest.raises(ReproError):
        load_index(path)


def test_malformed_snapshot_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 1, "graph": {}}))
    with pytest.raises(ReproError):
        load_index(path)


def test_config_to_dict_subset():
    d = config_to_dict(GGridConfig(delta_b=64))
    assert d["delta_b"] == 64
    assert "gpu" not in d  # the cost model is environment, not state


def test_restore_preserves_chronology_with_reversed_ids(medium_graph, tmp_path):
    """Regression: ``load_index`` used to re-ingest the object table
    sorted by object id.  With ids descending while timestamps ascend,
    the replayed lists were anti-chronological, so ``Bucket.t`` (when it
    was last-message) claimed buckets holding fresh messages were stale
    and the first cleaning silently expired live objects."""
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4, t_delta=10.0))
    for i in range(8):
        # object ids descend (8..1) while time ascends (1..8)
        index.ingest(Message(8 - i, 0, 0.1 * i, 1.0 + i))
    restored = load_index(save_index(index, tmp_path / "snap.json"))

    cell = restored.grid.cell_of_edge(0)
    times = [m.t for m in restored.lists[cell].messages()]
    assert times == sorted(times)  # chronological invariant survives

    # t_now=12: objects with t >= 2 are within contract; a clean must
    # keep them (the old replay dropped everything in "stale" buckets)
    restored.clean_cells({cell}, t_now=12.0)
    for obj in range(1, 8):  # t = 2..8, all live
        assert obj in restored.object_table
    answer = restored.knn(NetworkLocation(0, 0.0), k=7, t_now=12.0)
    assert sorted(answer.objects()) == list(range(1, 8))


def test_restore_preserves_pending_backlog(medium_graph, tmp_path):
    """The snapshot persists the compacted message state: backlogs (and
    removal markers) survive a save/load byte-for-byte, so recovery does
    not owe a re-cleaning of updates that were already cached."""
    index = _populated(medium_graph)
    index.ingest(Message(0, 1, 0.0, 2.0))  # cross-cell move: removal marker
    restored = load_index(save_index(index, tmp_path / "snap.json"))
    assert restored.pending_messages() == index.pending_messages()
    for cell, mlist in index.lists.items():
        got = restored.lists[cell].messages()
        want = mlist.messages()
        assert [(m.obj, m.edge, m.offset, m.t) for m in got] == [
            (m.obj, m.edge, m.offset, m.t) for m in want
        ]


def test_remove_object(medium_graph):
    index = _populated(medium_graph)
    index.remove_object(3, t=5.0)
    assert 3 not in index.object_table
    answer = index.knn(NetworkLocation(0, 0.0), k=25, t_now=5.0)
    assert 3 not in answer.objects()


def test_remove_unknown_object(medium_graph):
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    with pytest.raises(UnknownObjectError):
        index.remove_object(7, t=1.0)


def test_removed_object_can_reappear(medium_graph):
    index = _populated(medium_graph)
    index.remove_object(3, t=5.0)
    index.ingest(Message(3, 0, 0.1, 6.0))
    answer = index.knn(NetworkLocation(0, 0.05), k=1, t_now=6.0)
    assert answer.entries[0].obj == 3


def test_cleaning_expires_contract_violators(medium_graph):
    """An object silent past t_delta disappears from the object table
    when its cell is cleaned, keeping GPU and CPU views consistent."""
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4, t_delta=10.0))
    for i in range(4):  # fill a bucket so pruning is whole-bucket
        index.ingest(Message(1, 0, 0.1, 1.0 + 0.1 * i))
    index.ingest(Message(2, 0, 0.2, 95.0))
    cell = index.grid.cell_of_edge(0)
    result = index.clean_cells({cell}, t_now=100.0)
    assert result.objects_expired == 1
    assert 1 not in index.object_table
    assert 2 in index.object_table
