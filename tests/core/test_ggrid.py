"""Unit tests for the GGridIndex facade (Algorithm 1 and bookkeeping)."""

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ConfigError, QueryError, UnknownEdgeError
from repro.roadnet.location import NetworkLocation


@pytest.fixture
def index(medium_graph, fast_config):
    return GGridIndex(medium_graph, fast_config)


def test_ingest_updates_object_table(index):
    index.ingest(Message(7, 3, 0.25, 1.0))
    entry = index.object_table.get(7)
    assert entry.edge == 3 and entry.offset == 0.25 and entry.t == 1.0
    assert entry.cell == index.grid.cell_of_edge(3)


def test_ingest_caches_message(index):
    index.ingest(Message(7, 3, 0.25, 1.0))
    cell = index.grid.cell_of_edge(3)
    assert index.lists[cell].num_messages == 1


def test_move_appends_removal_marker(index, medium_graph):
    grid = index.grid
    e1 = 0
    e2 = next(
        e.id
        for e in medium_graph.edges()
        if grid.cell_of_edge(e.id) != grid.cell_of_edge(e1)
    )
    index.ingest(Message(7, e1, 0.1, 1.0))
    index.ingest(Message(7, e2, 0.1, 2.0))
    old_cell = grid.cell_of_edge(e1)
    markers = [m for m in index.lists[old_cell].messages() if m.is_removal]
    assert len(markers) == 1
    assert markers[0].obj == 7 and markers[0].t == 2.0


def test_same_cell_move_has_no_marker(index, medium_graph):
    grid = index.grid
    e1 = 0
    # an edge in the same cell (possibly e1 itself)
    index.ingest(Message(7, e1, 0.1, 1.0))
    index.ingest(Message(7, e1, 0.5, 2.0))
    cell = grid.cell_of_edge(e1)
    assert not any(m.is_removal for m in index.lists[cell].messages())


def test_ingest_rejects_markers(index):
    with pytest.raises(QueryError):
        index.ingest(Message(7, None, None, 1.0))


def test_ingest_rejects_unknown_edge(index):
    with pytest.raises(UnknownEdgeError):
        index.ingest(Message(7, 10**9, 0.0, 1.0))


def test_bulk_load(index):
    index.bulk_load({1: NetworkLocation(0, 0.1), 2: NetworkLocation(1, 0.2)}, t=1.0)
    assert index.num_objects == 2
    assert index.messages_ingested == 2


def test_update_touches_small_and_constant(index, medium_graph):
    """The lazy ingest touches 2-3 entries per message, never more."""
    for i in range(40):
        index.ingest(Message(i % 5, i % medium_graph.num_edges, 0.0, float(i)))
    assert index.update_touches <= 3 * 40


def test_latest_time_tracked(index):
    index.ingest(Message(1, 0, 0.0, 5.0))
    index.ingest(Message(2, 0, 0.0, 3.0))
    assert index.latest_time == 5.0


def test_knn_default_time_is_latest(index):
    index.ingest(Message(1, 0, 0.1, 5.0))
    answer = index.knn(NetworkLocation(0, 0.0), k=1)
    assert answer.entries[0].obj == 1


def test_size_bytes_components(index):
    sizes = index.size_bytes()
    assert sizes["total"] == sizes["cpu"] + sizes["gpu"]
    assert sizes["cpu"] == sizes["grid"] + sizes["object_table"] + sizes["message_lists"]
    assert sizes["gpu"] > 0


def test_size_grows_with_messages(index, medium_graph):
    before = index.size_bytes()["message_lists"]
    for i in range(50):
        index.ingest(Message(i, i % medium_graph.num_edges, 0.0, float(i)))
    assert index.size_bytes()["message_lists"] > before


def test_grid_copy_transferred_at_build(medium_graph, fast_config):
    index = GGridIndex(medium_graph, fast_config)
    assert index.stats.bytes_h2d >= index.grid.device_nbytes()


def test_reset_objects_keeps_grid(index, medium_graph):
    index.ingest(Message(1, 0, 0.1, 1.0))
    grid_before = index.grid
    index.reset_objects()
    assert index.num_objects == 0
    assert index.pending_messages() == 0
    assert index.grid is grid_before
    # index still works after a reset
    index.ingest(Message(2, 0, 0.2, 1.0))
    assert index.knn(NetworkLocation(0, 0.0), k=1).entries[0].obj == 2


def test_config_validation():
    with pytest.raises(ConfigError):
        GGridConfig(delta_c=0)
    with pytest.raises(ConfigError):
        GGridConfig(rho=1.0)
    with pytest.raises(ConfigError):
        GGridConfig(eta=0)
    with pytest.raises(ConfigError):
        GGridConfig(t_delta=0)


def test_config_with_override():
    cfg = GGridConfig().with_(delta_b=64)
    assert cfg.delta_b == 64
    assert cfg.delta_c == GGridConfig().delta_c


def test_bundle_size_property():
    assert GGridConfig(eta=5).bundle_size == 32
