"""Unit tests for message records."""

from repro.core.messages import CellMessage, Message
from repro.simgpu.memory import MESSAGE_BYTES


def test_removal_marker_detection():
    assert Message(1, None, None, 2.0).is_removal
    assert not Message(1, 0, 0.0, 2.0).is_removal


def test_sort_key_orders_by_time():
    older = Message(1, 0, 0.0, 1.0)
    newer = Message(1, 0, 0.0, 2.0)
    assert newer.sort_key > older.sort_key
    assert newer.newer_than(older)
    assert not older.newer_than(newer)


def test_sort_key_marker_loses_tie():
    """A removal marker carries the move's timestamp; the real message
    must win the tie or the object vanishes (regression test)."""
    marker = Message(1, None, None, 5.0)
    real = Message(1, 3, 0.5, 5.0)
    assert real.sort_key > marker.sort_key


def test_newer_than_none():
    assert Message(1, 0, 0.0, 0.0).newer_than(None)


def test_device_size_is_packed():
    assert Message(1, 2, 0.5, 1.0).device_nbytes() == MESSAGE_BYTES
    assert CellMessage(1, 7, 2, 0.5, 1.0).device_nbytes() == MESSAGE_BYTES


def test_cell_message_tagging():
    m = Message(9, 4, 0.25, 3.5)
    cm = CellMessage.tag(m, cell=12)
    assert (cm.obj, cm.cell, cm.edge, cm.offset, cm.t) == (9, 12, 4, 0.25, 3.5)
    assert cm.sort_key == m.sort_key


def test_cell_message_marker_tie():
    marker = CellMessage(1, 0, None, None, 5.0)
    real = CellMessage(1, 1, 3, 0.5, 5.0)
    assert real.sort_key > marker.sort_key
