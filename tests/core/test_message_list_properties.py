"""Stateful property test of the message-list cleaning-lock protocol.

A model list of object ids shadows a real :class:`MessageList` through
random sequences of append / lock / release / abort / prepend_snapshot.
The property: no message is ever lost or duplicated except through an
explicit ``release_cleaned``, which drops *exactly* the messages frozen
by the matching ``lock_for_cleaning`` — regardless of how snapshots,
post-lock appends and aborted passes interleave.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.message_list import MessageList
from repro.core.messages import Message
from repro.errors import CleaningLockError


def _msg(obj: int, t: float) -> Message:
    return Message(obj, 0, 0.0, t)


class LockProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.lst = MessageList(capacity=3)
        self.model: list[int] = []  # expected ids, in list order
        self.frozen: list[int] | None = None  # ids owned by an in-flight pass
        self.counter = 0

    def _next_ids(self, n: int) -> list[int]:
        ids = list(range(self.counter, self.counter + n))
        self.counter += n
        return ids

    @rule()
    def append(self):
        (i,) = self._next_ids(1)
        self.lst.append(_msg(i, float(i)))
        self.model.append(i)

    @rule()
    def lock(self):
        if self.frozen is not None:
            with pytest.raises(CleaningLockError):
                self.lst.lock_for_cleaning()
        else:
            self.lst.lock_for_cleaning()
            self.frozen = list(self.model)

    @rule()
    def release(self):
        if self.frozen is None:
            with pytest.raises(CleaningLockError):
                self.lst.release_cleaned()
        else:
            dropped = self.lst.release_cleaned()
            # release drops exactly the frozen messages, nothing else
            assert dropped == len(self.frozen)
            assert self.model[: len(self.frozen)] == self.frozen
            self.model = self.model[len(self.frozen) :]
            self.frozen = None

    @rule()
    def abort(self):
        self.lst.unlock_abort()  # frozen buckets rejoin the live list
        self.frozen = None

    @rule(n=st.integers(1, 5))
    def prepend(self, n):
        ids = self._next_ids(n)
        self.lst.prepend_snapshot([_msg(i, -1.0) for i in ids])
        if self.frozen is None:
            self.model = ids + self.model  # before the head
        else:
            # at the lock frontier: after the frozen region, so a later
            # release keeps the snapshot while dropping the frozen part
            cut = len(self.frozen)
            self.model = self.model[:cut] + ids + self.model[cut:]

    @invariant()
    def real_list_matches_model(self):
        assert [m.obj for m in self.lst.messages()] == self.model


LockProtocolMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestLockProtocol = LockProtocolMachine.TestCase
