"""Unit tests for workload assembly and event merging."""

import pytest

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.workload import Query, Workload, make_workload, random_locations
from repro.roadnet.location import NetworkLocation


def test_random_locations_valid_and_deterministic(small_graph):
    a = random_locations(small_graph, 10, seed=1)
    b = random_locations(small_graph, 10, seed=1)
    assert a == b
    for loc in a:
        loc.validate(small_graph)


def test_make_workload_shape(small_graph):
    wl = make_workload(small_graph, num_objects=5, duration=4.0, num_queries=4, k=3)
    assert set(wl.initial) == set(range(5))
    assert wl.num_queries == 4
    assert all(q.k == 3 for q in wl.queries)
    assert wl.num_updates >= 5 * 3  # ~f * duration per object


def test_queries_evenly_spaced(small_graph):
    wl = make_workload(small_graph, num_objects=3, duration=8.0, num_queries=4)
    times = [q.t for q in wl.queries]
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_events_merged_in_time_order(small_graph):
    wl = make_workload(small_graph, num_objects=4, duration=5.0, num_queries=3)
    last = -1.0
    for kind, event in wl.events():
        t = event.t
        assert t >= last - 1e-12
        last = t


def test_events_tie_updates_first():
    """A query at time t sees every message with timestamp <= t."""
    wl = Workload(
        initial={},
        updates=[Message(1, 0, 0.0, 5.0)],
        queries=[Query(5.0, NetworkLocation(0, 0.0), 1)],
    )
    kinds = [kind for kind, _ in wl.events()]
    assert kinds == ["update", "query"]


def test_events_exhaust_both_streams():
    wl = Workload(
        initial={},
        updates=[Message(1, 0, 0.0, 1.0), Message(1, 0, 0.0, 9.0)],
        queries=[Query(5.0, NetworkLocation(0, 0.0), 1)],
    )
    kinds = [kind for kind, _ in wl.events()]
    assert kinds == ["update", "query", "update"]


def test_make_workload_validation(small_graph):
    with pytest.raises(ConfigError):
        make_workload(small_graph, 5, duration=0.0, num_queries=1)
    with pytest.raises(ConfigError):
        make_workload(small_graph, 5, duration=1.0, num_queries=0)
