"""Unit tests for the MOTO-style trace generator."""

import pytest

from repro.errors import ConfigError
from repro.mobility.moto import MotoGenerator


def test_messages_time_ordered(small_graph):
    gen = MotoGenerator(small_graph, 10, seed=1)
    msgs = list(gen.messages(duration=5.0))
    times = [m.t for m in msgs]
    assert times == sorted(times)


def test_update_frequency_respected(small_graph):
    """At f Hz each object reports ~f*duration times, and consecutive
    reports of one object are exactly 1/f apart."""
    gen = MotoGenerator(small_graph, 5, update_frequency=2.0, seed=2)
    msgs = list(gen.messages(duration=10.0))
    per_object: dict[int, list[float]] = {}
    for m in msgs:
        per_object.setdefault(m.obj, []).append(m.t)
    for times in per_object.values():
        assert 18 <= len(times) <= 21
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.5) for g in gaps)


def test_update_contract_never_violated(small_graph):
    """The t_delta contract: gaps never exceed the update interval."""
    gen = MotoGenerator(small_graph, 8, update_frequency=1.0, seed=3)
    msgs = list(gen.messages(duration=12.0))
    last: dict[int, float] = {}
    for m in msgs:
        if m.obj in last:
            assert m.t - last[m.obj] <= 1.0 + 1e-9
        last[m.obj] = m.t


def test_messages_are_valid_locations(small_graph):
    gen = MotoGenerator(small_graph, 10, seed=4)
    for m in gen.messages(duration=5.0):
        edge = small_graph.edge(m.edge)
        assert 0.0 <= m.offset <= edge.weight


def test_deterministic_per_seed(small_graph):
    a = list(MotoGenerator(small_graph, 5, seed=7).messages(3.0))
    b = list(MotoGenerator(small_graph, 5, seed=7).messages(3.0))
    assert a == b


def test_initial_placements_cover_all_objects(small_graph):
    gen = MotoGenerator(small_graph, 12, seed=5)
    placements = gen.initial_placements()
    assert set(placements) == set(range(12))
    for loc in placements.values():
        loc.validate(small_graph)


def test_invalid_parameters(small_graph):
    with pytest.raises(ConfigError):
        MotoGenerator(small_graph, 0)
    with pytest.raises(ConfigError):
        MotoGenerator(small_graph, 1, update_frequency=0.0)
    with pytest.raises(ConfigError):
        MotoGenerator(small_graph, 1, speed_range=(2.0, 1.0))


def test_objects_actually_move(small_graph):
    gen = MotoGenerator(small_graph, 5, seed=6)
    start = gen.initial_placements()
    list(gen.messages(duration=10.0))
    end = gen.current_locations()
    moved = sum(1 for o in start if start[o] != end[o])
    assert moved >= 4
