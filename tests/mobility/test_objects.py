"""Unit tests for moving-object state."""

import random

import pytest

from repro.mobility.objects import MovingObject


def test_advance_within_edge(line_graph):
    obj = MovingObject(0, edge=0, offset=0.0, speed=0.3)
    obj.advance(line_graph, dt=1.0, rng=random.Random(0))
    assert obj.edge == 0
    assert obj.offset == pytest.approx(0.3)


def test_advance_crosses_vertex(line_graph):
    obj = MovingObject(0, edge=0, offset=0.9, speed=1.0)
    obj.advance(line_graph, dt=0.5, rng=random.Random(0))
    assert obj.offset == pytest.approx(0.4) or obj.offset == pytest.approx(0.4, abs=1e-9)
    assert obj.edge != 0 or obj.offset <= 1.0


def test_advance_prefers_not_turning_back(line_graph):
    """At vertex 1 arriving from 0, the only forward option is 1->2."""
    obj = MovingObject(0, edge=0, offset=0.5, speed=1.0)
    obj.advance(line_graph, dt=1.0, rng=random.Random(0))
    e = line_graph.edge(obj.edge)
    assert (e.source, e.dest) == (1, 2)


def test_advance_zero_dt_is_noop(line_graph):
    obj = MovingObject(0, edge=0, offset=0.5, speed=1.0)
    obj.advance(line_graph, dt=0.0, rng=random.Random(0))
    assert obj.edge == 0 and obj.offset == 0.5


def test_advance_long_distance_stays_valid(small_graph):
    rng = random.Random(3)
    obj = MovingObject(0, edge=0, offset=0.0, speed=2.0)
    for _ in range(20):
        obj.advance(small_graph, dt=1.0, rng=rng)
        edge = small_graph.edge(obj.edge)
        assert 0.0 <= obj.offset <= edge.weight


def test_location(line_graph):
    obj = MovingObject(0, edge=2, offset=0.25, speed=1.0)
    loc = obj.location()
    assert loc.edge_id == 2 and loc.offset == 0.25
    loc.validate(line_graph)


def test_dead_end_raises():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)  # vertex 1 has no out-edges
    obj = MovingObject(0, edge=0, offset=0.5, speed=1.0)
    with pytest.raises(ValueError):
        obj.advance(g, dt=2.0, rng=random.Random(0))
