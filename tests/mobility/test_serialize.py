"""Tests for workload serialisation."""

import json

import pytest

from repro.errors import ReproError
from repro.mobility.serialize import load_workload, save_workload
from repro.mobility.workload import make_workload


@pytest.fixture(scope="module")
def workload(small_graph):
    return make_workload(
        small_graph, num_objects=10, duration=5.0, num_queries=3, k=4, seed=2
    )


def test_roundtrip(workload, tmp_path):
    path = save_workload(workload, tmp_path / "wl.jsonl")
    back = load_workload(path)
    assert back.initial == workload.initial
    assert back.updates == workload.updates
    assert back.queries == workload.queries


def test_replay_of_loaded_workload_identical(small_graph, workload, tmp_path):
    from repro.baselines.naive import NaiveKnnIndex
    from repro.server.server import QueryServer

    back = load_workload(save_workload(workload, tmp_path / "wl.jsonl"))
    _, a = QueryServer(NaiveKnnIndex(small_graph)).replay(workload, collect_answers=True)
    _, b = QueryServer(NaiveKnnIndex(small_graph)).replay(back, collect_answers=True)
    assert [x.distances() for x in a] == [x.distances() for x in b]


def test_missing_meta_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "place", "obj": 0, "edge": 1, "offset": 0.0}\n')
    with pytest.raises(ReproError):
        load_workload(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "meta", "version": 99}) + "\n")
    with pytest.raises(ReproError):
        load_workload(path)


def test_unknown_kind_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps(
            {"kind": "meta", "version": 1, "objects": 0, "updates": 0, "queries": 0}
        )
        + "\n"
        + json.dumps({"kind": "mystery"})
        + "\n"
    )
    with pytest.raises(ReproError):
        load_workload(path)


def test_count_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps(
            {"kind": "meta", "version": 1, "objects": 2, "updates": 0, "queries": 0}
        )
        + "\n"
    )
    with pytest.raises(ReproError):
        load_workload(path)


def test_invalid_json_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ReproError):
        load_workload(path)
