"""Tests for hotspot and rush-hour workload patterns."""

import pytest

from repro.errors import ConfigError
from repro.mobility.patterns import RushHourGenerator, hotspot_placements


def test_hotspot_placements_valid(small_graph):
    placements = hotspot_placements(small_graph, 40, num_hotspots=2, seed=3)
    assert len(placements) == 40
    for loc in placements.values():
        loc.validate(small_graph)


def test_hotspots_concentrate_objects(small_graph):
    """Hotspot placements occupy far fewer cells than uniform ones."""
    from repro.config import GGridConfig
    from repro.core.graph_grid import GraphGrid
    from repro.mobility.workload import random_locations

    grid = GraphGrid.build(small_graph, GGridConfig())
    hot = hotspot_placements(small_graph, 60, num_hotspots=2, spread=1.5, seed=4)
    uniform = dict(enumerate(random_locations(small_graph, 60, seed=4)))

    def cells_of(placements):
        return {grid.cell_of_edge(loc.edge_id) for loc in placements.values()}

    assert len(cells_of(hot)) < len(cells_of(uniform))


def test_hotspot_validation(small_graph):
    with pytest.raises(ConfigError):
        hotspot_placements(small_graph, 0)
    with pytest.raises(ConfigError):
        hotspot_placements(small_graph, 5, num_hotspots=0)
    with pytest.raises(ConfigError):
        hotspot_placements(small_graph, 5, spread=0.0)


def test_hotspot_deterministic(small_graph):
    a = hotspot_placements(small_graph, 20, seed=9)
    b = hotspot_placements(small_graph, 20, seed=9)
    assert a == b


def test_rush_hour_burst(small_graph):
    gen = RushHourGenerator(small_graph, 8, [(10.0, 0.5), (20.0, 4.0)], seed=2)
    msgs = list(gen.messages())
    early = sum(1 for m in msgs if m.t <= 10.0)
    late = sum(1 for m in msgs if m.t > 10.0)
    assert late > 4 * early  # 8x frequency, allow generator slack


def test_rush_hour_time_ordered_overall(small_graph):
    gen = RushHourGenerator(small_graph, 5, [(5.0, 1.0), (10.0, 2.0)], seed=1)
    times = [m.t for m in gen.messages()]
    assert times == sorted(times)
    assert all(t <= 10.0 for t in times)


def test_rush_hour_validation(small_graph):
    with pytest.raises(ConfigError):
        RushHourGenerator(small_graph, 5, [])
    with pytest.raises(ConfigError):
        RushHourGenerator(small_graph, 5, [(5.0, 1.0), (5.0, 2.0)])
    with pytest.raises(ConfigError):
        RushHourGenerator(small_graph, 5, [(5.0, 0.0)])


def test_rush_hour_messages_valid_locations(small_graph):
    gen = RushHourGenerator(small_graph, 5, [(8.0, 1.0)], seed=3)
    for m in gen.messages():
        edge = small_graph.edge(m.edge)
        assert 0.0 <= m.offset <= edge.weight
