"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.roadnet.generators import grid_road_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


@pytest.fixture(scope="session")
def small_graph() -> RoadNetwork:
    """An 8x8 perturbed lattice, strongly connected (session-cached)."""
    return grid_road_network(8, 8, seed=1)


@pytest.fixture(scope="session")
def medium_graph() -> RoadNetwork:
    """A 12x12 perturbed lattice for integration-level tests."""
    return grid_road_network(12, 12, seed=3)


@pytest.fixture
def line_graph() -> RoadNetwork:
    """A 5-vertex bidirectional path with unit weights: 0-1-2-3-4."""
    g = RoadNetwork()
    for i in range(5):
        g.add_vertex(float(i), 0.0)
    for i in range(4):
        g.add_bidirectional_edge(i, i + 1, 1.0)
    return g


@pytest.fixture
def triangle_graph() -> RoadNetwork:
    """A directed triangle 0->1->2->0 with weights 1, 2, 3."""
    g = RoadNetwork()
    g.add_vertices(3)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(2, 0, 3.0)
    return g


@pytest.fixture
def fast_config() -> GGridConfig:
    """A small-bundle config that keeps unit tests fast."""
    return GGridConfig(eta=3, delta_b=8)


def random_location(graph: RoadNetwork, rng: random.Random) -> NetworkLocation:
    """A uniformly random on-edge location (test helper)."""
    edge = rng.randrange(graph.num_edges)
    return NetworkLocation(edge, rng.uniform(0.0, graph.edge(edge).weight))
