"""Tests for the Markdown results report generator."""

import json

from repro.bench.summary import build_report, write_report


def _write(tmp_path, stem, rows):
    (tmp_path / f"{stem}.json").write_text(json.dumps(rows))


def test_report_includes_sections(tmp_path):
    _write(
        tmp_path,
        "fig9_vary_frequency",
        [
            {"dataset": "NY", "frequency_hz": 1.0, "algorithm": "G-Grid",
             "amortized_s": 1e-4},
            {"dataset": "NY", "frequency_hz": 1.0, "algorithm": "ROAD",
             "amortized_s": 5e-4},
        ],
    )
    report = build_report(tmp_path)
    assert "## Fig. 9 — varying update frequency" in report
    assert "| dataset |" in report
    assert "G-Grid wins by up to 5.0x (vs ROAD)" in report


def test_report_skips_none_amortized(tmp_path):
    _write(
        tmp_path,
        "fig5_datasets",
        [
            {"dataset": "USA", "algorithm": "G-Grid", "amortized_s": 1e-3},
            {"dataset": "USA", "algorithm": "V-Tree (G)", "amortized_s": None},
        ],
    )
    report = build_report(tmp_path)
    assert "None" in report  # rendered in the table
    # no crash and no win factor against the missing algorithm
    assert "vs V-Tree (G)" not in report


def test_report_empty_directory(tmp_path):
    report = build_report(tmp_path)
    assert "No results found" in report


def test_write_report(tmp_path):
    _write(tmp_path, "table2_datasets", [{"dataset": "NY", "V": 132}])
    path = write_report(tmp_path)
    assert path.exists()
    assert "Table II" in path.read_text()


def test_unknown_files_ignored(tmp_path):
    _write(tmp_path, "something_else", [{"x": 1}])
    report = build_report(tmp_path)
    assert "something_else" not in report
