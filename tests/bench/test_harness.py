"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import build_index, cached_workload, run_point, scaled_objects
from repro.errors import ConfigError


def test_build_index_cached():
    a = build_index("Naive", "NY")
    b = build_index("Naive", "NY")
    assert a is b


def test_build_index_distinct_knobs():
    a = build_index("G-Grid", "NY", (("delta_b", 32),))
    b = build_index("G-Grid", "NY", (("delta_b", 64),))
    assert a is not b
    assert a.config.delta_b == 32 and b.config.delta_b == 64


def test_build_index_unknown_algorithm():
    with pytest.raises(ConfigError):
        build_index("Quadtree", "NY")


def test_scaled_objects_floor():
    assert scaled_objects("NY") >= 300


def test_cached_workload_is_shared():
    a = cached_workload("NY", 20, 5.0, 2, 4, 1.0, 1)
    b = cached_workload("NY", 20, 5.0, 2, 4, 1.0, 1)
    assert a is b
    assert a.num_queries == 2


def test_run_point_produces_report():
    report = run_point(
        "Naive", "NY", num_objects=20, duration=4.0, num_queries=2, k=4
    )
    assert report.n_queries == 2
    assert report.amortized_s() > 0


def test_run_point_resets_between_runs():
    r1 = run_point("Naive", "NY", num_objects=20, duration=4.0, num_queries=2, k=4)
    r2 = run_point("Naive", "NY", num_objects=20, duration=4.0, num_queries=2, k=4)
    assert r1.n_updates == r2.n_updates  # no state leaked across replays


def test_run_point_ggrid_with_knobs():
    report = run_point(
        "G-Grid",
        "NY",
        num_objects=20,
        duration=4.0,
        num_queries=2,
        k=4,
        delta_b=16,
        eta=3,
    )
    assert report.gpu_seconds > 0
