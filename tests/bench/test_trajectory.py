"""Perf-trajectory rows and the regression gate, including the required
tolerance-violation case: an injected slowdown must fail the gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    SCENARIOS,
    TrajectoryRow,
    append_row,
    bench_path,
    check_regression,
    gate,
    load_rows,
    run_scenario,
)
from repro.errors import ConfigError

pytestmark = pytest.mark.obs


def row(scenario="single_server", counters=None, latency=None, wall=1.0):
    return TrajectoryRow(
        scenario=scenario,
        recorded_at="2026-08-08T00:00:00Z",
        wall_s=wall,
        counters=counters if counters is not None else {"gpu_s": 1.0},
        latency=latency if latency is not None else {"p99_s": 0.01},
    )


class TestRows:
    def test_round_trip(self):
        r = row(counters={"gpu_s": 0.5}, latency={"p99_s": 0.25})
        assert TrajectoryRow.from_dict(r.as_dict()) == r

    def test_malformed_row_rejected(self):
        with pytest.raises(ConfigError, match="malformed trajectory row"):
            TrajectoryRow.from_dict({"scenario": "x"})

    def test_append_and_load(self, tmp_path):
        path = append_row(row(), tmp_path)
        assert path == bench_path("single_server", tmp_path)
        assert path.name == "BENCH_single_server.json"
        append_row(row(wall=2.0), tmp_path)
        rows = load_rows(path)
        assert [r.wall_s for r in rows] == [1.0, 2.0]
        # the on-disk form is a plain JSON array (plot-tool friendly)
        assert isinstance(json.loads(path.read_text()), list)

    def test_load_rejects_non_array(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ConfigError, match="JSON array"):
            load_rows(path)


class TestGate:
    def test_identical_rows_pass(self):
        assert check_regression(row(), row()) == []

    def test_counter_regression_fails(self):
        # the injected slowdown: simulated GPU time grows 10%
        base = row(counters={"gpu_s": 1.0, "transfer_bytes": 100.0})
        slow = row(counters={"gpu_s": 1.1, "transfer_bytes": 100.0})
        violations = check_regression(base, slow)
        assert len(violations) == 1
        assert "gpu_s" in violations[0] and "regressed" in violations[0]

    def test_even_tiny_counter_drift_fails(self):
        # deterministic counters get float-dust headroom only
        base = row(counters={"update_touches": 1000.0})
        slow = row(counters={"update_touches": 1001.0})
        assert check_regression(base, slow)

    def test_latency_gets_loose_headroom(self):
        base = row(latency={"p99_s": 0.010})
        noisy = row(latency={"p99_s": 0.025})  # 2.5x: within 1+2.0
        slow = row(latency={"p99_s": 0.035})  # 3.5x: beyond it
        assert check_regression(base, noisy) == []
        assert check_regression(base, slow)

    def test_improvements_never_fail(self):
        base = row(counters={"gpu_s": 1.0}, latency={"p99_s": 0.1})
        fast = row(counters={"gpu_s": 0.5}, latency={"p99_s": 0.01})
        assert check_regression(base, fast) == []

    def test_zero_baseline_uses_absolute_tolerance(self):
        base = row(counters={"total_retries": 0.0})
        ok = row(counters={"total_retries": 0.0})
        bad = row(counters={"total_retries": 3.0})
        assert check_regression(base, ok) == []
        assert check_regression(base, bad)

    def test_missing_metric_fails(self):
        base = row(counters={"gpu_s": 1.0, "transfer_bytes": 10.0})
        dropped = row(counters={"gpu_s": 1.0})
        violations = check_regression(base, dropped)
        assert any("missing" in v for v in violations)

    def test_scenario_mismatch_raises(self):
        with pytest.raises(ConfigError, match="cannot gate"):
            check_regression(row("batch"), row("chaos"))

    def test_gate_over_directory(self, tmp_path):
        append_row(row(counters={"gpu_s": 1.0}), tmp_path)
        assert gate(tmp_path) == []  # single row: vacuous pass
        append_row(row(counters={"gpu_s": 1.0}), tmp_path)
        assert gate(tmp_path) == []
        append_row(row(counters={"gpu_s": 2.0}), tmp_path)
        violations = gate(tmp_path)
        assert violations and "gpu_s" in violations[0]


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown trajectory scenario"):
            run_scenario("warp_drive")

    def test_scenario_names_are_the_contract(self):
        assert SCENARIOS == (
            "single_server",
            "batch",
            "chaos",
            "cluster",
            "serve",
            "subscriptions",
            "scale",
            "planner",
        )

    def test_scale_scenario_is_deterministic(self):
        a = run_scenario("scale")
        b = run_scenario("scale")
        assert a.scenario == "scale"
        # the scale row is counters-only: every value must be bit-stable
        # (the dataset cache keeps the graph identical across replays)
        assert a.counters == b.counters
        assert a.counters["vertices"] > 30_000
        assert a.counters["query_fallbacks"] == 0.0
        assert a.counters["query_distance_checksum"] > 0.0
        assert a.latency == {}

    def test_single_server_scenario_is_deterministic(self):
        a = run_scenario("single_server")
        b = run_scenario("single_server")
        assert a.scenario == "single_server"
        # modelled outcomes are bit-stable across *fresh* processes (the
        # gate relies on that); within one process the memoised index
        # carries last-ulp state into the second replay, so allow dust
        # on the simulated-seconds counter and demand exactness elsewhere
        for name, value in a.counters.items():
            if name == "gpu_s":
                assert b.counters[name] == pytest.approx(value, rel=1e-4)
            else:
                assert b.counters[name] == value, name
        assert a.counters["n_queries"] > 0
        assert set(a.latency) == {
            "p50_s",
            "p95_s",
            "p99_s",
            "query_modeled_s",
            "update_modeled_s",
        }

    def test_committed_baselines_exist_and_parse(self):
        for scenario in SCENARIOS:
            rows = load_rows(bench_path(scenario))
            assert rows, f"missing committed baseline for {scenario}"
            assert rows[0].scenario == scenario
