"""Tests for the ``python -m repro.bench`` command line."""


from repro.bench.__main__ import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "report" in out


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert (tmp_path / "table2.json").exists()


def test_dataset_override(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    assert main(["lazy-vs-eager", "--dataset", "NY"]) == 0
    assert "lazy" in capsys.readouterr().out


def test_metrics_out_writes_prometheus_dump(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting
    from repro.obs.hub import default_observability

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    out_path = tmp_path / "metrics.prom"
    assert (
        main(
            ["lazy-vs-eager", "--dataset", "NY", "--metrics-out", str(out_path)]
        )
        == 0
    )
    assert f"metrics written to {out_path}" in capsys.readouterr().out
    text = out_path.read_text()
    # the experiment's replays were captured by the process-wide bundle
    assert "repro_ingest_messages_total" in text
    assert "repro_queries_total" in text
    # and the bundle was uninstalled afterwards
    assert default_observability() is None


def test_metrics_out_json_snapshot(capsys, tmp_path, monkeypatch):
    import json

    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    out_path = tmp_path / "metrics.json"
    assert main(["table2", "--metrics-out", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert set(doc) == {"warnings", "metrics"}


def test_metrics_out_bad_directory_fails_fast(capsys, tmp_path):
    missing = tmp_path / "no" / "such" / "metrics.prom"
    assert main(["table2", "--metrics-out", str(missing)]) == 2
    captured = capsys.readouterr()
    assert "does not exist" in captured.err
    assert "Table II" not in captured.out  # rejected before running anything


def test_report_command(capsys, tmp_path, monkeypatch):
    import repro.bench.summary as summary

    monkeypatch.setattr(summary, "RESULTS_DIR", tmp_path)
    assert main(["report"]) == 0
    assert "report written" in capsys.readouterr().out


def test_chaos_flag_installs_plan_for_the_run(capsys, tmp_path, monkeypatch):
    import repro.bench.__main__ as cli
    import repro.bench.reporting as reporting
    from repro.chaos import default_fault_plan

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    seen = {}

    def probe():
        seen["plan"] = default_fault_plan()
        return [{"ok": True}]

    monkeypatch.setitem(cli.EXPERIMENTS, "table2", (probe, "probe", False))
    assert main(["table2", "--chaos", "mixed", "--chaos-seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "chaos" in out
    plan = seen["plan"]
    assert plan is not None and plan.seed == 9
    assert plan.kernel_fault_rate > 0
    # the plan is scoped to the run, not left installed
    assert default_fault_plan() is None


def test_chaos_unknown_profile_fails_fast(capsys):
    assert main(["table2", "--chaos", "nope"]) == 2
    assert "unknown chaos profile" in capsys.readouterr().err
