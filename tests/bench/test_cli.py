"""Tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "report" in out


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert (tmp_path / "table2.json").exists()


def test_dataset_override(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    assert main(["lazy-vs-eager", "--dataset", "NY"]) == 0
    assert "lazy" in capsys.readouterr().out


def test_report_command(capsys, tmp_path, monkeypatch):
    import repro.bench.summary as summary

    monkeypatch.setattr(summary, "RESULTS_DIR", tmp_path)
    assert main(["report"]) == 0
    assert "report written" in capsys.readouterr().out
