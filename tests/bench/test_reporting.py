"""Unit tests for benchmark result formatting and persistence."""

import json

from repro.bench.reporting import format_table, format_value, save_results


def test_format_value_floats():
    assert format_value(0.0) == "0"
    assert format_value(1.5) == "1.5"
    assert "e" in format_value(1.2e-7)
    assert "e" in format_value(3.4e9)


def test_format_value_non_float():
    assert format_value(42) == "42"
    assert format_value("x") == "x"


def test_format_table_alignment():
    rows = [{"a": 1, "bb": 2.5}, {"a": 100, "bb": 0.001}]
    out = format_table(rows, "title")
    lines = out.splitlines()
    assert lines[0] == "title"
    assert lines[1].startswith("a")
    assert "bb" in lines[1]
    assert len(lines) == 5  # title + header + rule + 2 rows


def test_format_table_empty():
    assert "(no rows)" in format_table([], "t")


def test_save_results_roundtrip(tmp_path):
    rows = [{"k": 8, "v": 1.5}]
    path = save_results("unit_test", rows, directory=tmp_path)
    assert path.name == "unit_test.json"
    assert json.loads(path.read_text()) == rows
