"""Smoke tests: the experiment drivers produce well-formed rows.

The full grids run under ``pytest benchmarks/``; here each driver runs
on its smallest configuration so ``pytest tests/`` alone exercises the
whole experiment code path.
"""

import pytest

from repro.bench import experiments


def test_table2_rows():
    rows = experiments.table2_datasets()
    assert len(rows) == 6
    assert all(r["E"] > r["V"] for r in rows)


def test_fig10ab_single_dataset():
    rows = experiments.fig10ab_scalability(("NY",))
    assert len(rows) == 1
    assert rows[0]["throughput_qps"] > 0


def test_fig10cd_single_point():
    rows = experiments.fig10cd_transfer(("NY",), (8,))
    assert rows[0]["transfer_bytes_per_query"] > 0


def test_fig5_single_dataset():
    rows = experiments.fig5_datasets(("NY",))
    algorithms = {r["algorithm"] for r in rows}
    assert algorithms == {"G-Grid", "G-Grid (L)", "V-Tree", "V-Tree (G)", "ROAD"}


def test_fig9_two_frequencies():
    rows = experiments.fig9_vary_frequency("NY", (0.5, 1.0))
    assert len(rows) == 8
    assert all(r["amortized_s"] > 0 for r in rows)


def test_ablation_sdist_early_exit_rows():
    rows = experiments.ablation_sdist_early_exit("NY")
    assert {r["early_exit"] for r in rows} == {True, False}


def test_costmodel_rows():
    rows = experiments.costmodel_validation("NY")
    assert [r["k"] for r in rows] == [8, 16, 32, 64]
    assert all(r["bound_bytes"] > 0 for r in rows)


@pytest.mark.chaos
def test_chaos_resilience_rows():
    rows = experiments.chaos_resilience("NY")
    assert {r["profile"] for r in rows} == {
        "kernels", "transfers", "oom", "capacity", "mixed", "blackout",
    }
    # the exactness oracle holds on every profile
    assert all(r["answers_match"] for r in rows)
    # and the harness actually hurt something somewhere
    assert any(r["faults"] > 0 for r in rows)
    assert any(r["degraded"] > 0 for r in rows)
    assert any(r["backpressured"] > 0 for r in rows)
