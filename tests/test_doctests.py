"""Execute the library's docstring examples.

Every example in a public docstring is a promise to the user; this test
runs them all so documentation drift fails CI.
"""

import doctest

import pytest

import repro.core.ggrid
import repro.core.message_list
import repro.mobility.moto
import repro.mobility.patterns
import repro.obs
import repro.obs.tracing
import repro.persistence
import repro.roadnet.contraction
import repro.roadnet.graph
import repro.simgpu.device

MODULES = [
    repro.roadnet.graph,
    repro.core.ggrid,
    repro.core.message_list,
    repro.mobility.moto,
    repro.mobility.patterns,
    repro.obs,
    repro.obs.tracing,
    repro.persistence,
    repro.roadnet.contraction,
    repro.simgpu.device,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
