"""Tests for GPU timeline tracing."""

import json

import pytest

from repro.errors import ConfigError
from repro.simgpu.device import SimGpu
from repro.simgpu.trace import GpuTrace


def _work(gpu):
    gpu.to_device("xs", [1, 2, 3])

    def kernel(ctx, xs):
        ctx.charge(10)
        return sum(xs)

    gpu.launch("sum", 4, kernel, gpu.fetch("xs"))
    gpu.from_device("xs")


def test_trace_records_events():
    gpu = SimGpu()
    with GpuTrace(gpu) as trace:
        _work(gpu)
    categories = [e.category for e in trace.events]
    assert categories == ["h2d", "kernel", "d2h"]
    assert all(e.duration_s > 0 for e in trace.events)


def test_trace_totals_match_stats():
    gpu = SimGpu()
    with GpuTrace(gpu) as trace:
        _work(gpu)
    totals = trace.total_by_category()
    assert totals["kernel"] == pytest.approx(gpu.stats.kernel_time_s)
    assert totals["h2d"] + totals["d2h"] == pytest.approx(gpu.stats.transfer_time_s)


def test_trace_uninstall_stops_recording():
    gpu = SimGpu()
    trace = GpuTrace(gpu).install()
    _work(gpu)
    n = len(trace.events)
    trace.uninstall()
    _work(gpu)
    assert len(trace.events) == n


def test_install_is_idempotent_for_same_trace():
    gpu = SimGpu()
    trace = GpuTrace(gpu)
    assert trace.install() is trace
    assert trace.install() is trace  # no double wrap
    _work(gpu)
    assert [e.category for e in trace.events] == ["h2d", "kernel", "d2h"]
    trace.uninstall()


def test_second_trace_on_same_device_raises():
    gpu = SimGpu()
    first = GpuTrace(gpu).install()
    second = GpuTrace(gpu)
    with pytest.raises(ConfigError):
        second.install()
    # the refused trace recorded nothing and the first still works
    _work(gpu)
    assert second.events == []
    assert len(first.events) == 3
    first.uninstall()


def test_uninstall_is_idempotent_and_releases_ownership():
    gpu = SimGpu()
    orig_launch = gpu.launch
    first = GpuTrace(gpu).install()
    first.uninstall()
    first.uninstall()  # no-op, must not corrupt the device
    assert gpu.launch == orig_launch
    # a fresh trace may now attach
    with GpuTrace(gpu) as second:
        _work(gpu)
    assert len(second.events) == 3
    assert gpu.launch == orig_launch


def test_same_trace_can_reenter_after_uninstall():
    gpu = SimGpu()
    trace = GpuTrace(gpu)
    with trace:
        _work(gpu)
    with trace:
        _work(gpu)
    assert len(trace.events) == 6


def test_nested_context_with_second_trace_raises():
    gpu = SimGpu()
    with GpuTrace(gpu):
        with pytest.raises(ConfigError):
            with GpuTrace(gpu):
                pass  # pragma: no cover


def test_top_kernels():
    gpu = SimGpu()
    with GpuTrace(gpu) as trace:
        for name, ops in (("big", 1000), ("small", 1)):
            def kernel(ctx, ops=ops):
                ctx.charge(ops)
            gpu.launch(name, 32, kernel)
    top = trace.top_kernels(1)
    assert top[0][0] == "big"


def test_chrome_trace_export(tmp_path):
    gpu = SimGpu()
    with GpuTrace(gpu) as trace:
        _work(gpu)
    path = trace.to_chrome_trace(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 3
    assert all(ev["ph"] == "X" for ev in doc["traceEvents"])


def test_trace_on_real_index(medium_graph):
    from repro.config import GGridConfig
    from repro.core.ggrid import GGridIndex
    from repro.core.messages import Message
    from repro.roadnet.location import NetworkLocation

    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=8))
    for i in range(20):
        index.ingest(Message(i, i % medium_graph.num_edges, 0.0, float(i)))
    with GpuTrace(index.gpu) as trace:
        index.knn(NetworkLocation(0, 0.0), k=5, t_now=25.0)
    names = {e.name for e in trace.events if e.category == "kernel"}
    assert "GPU_SDist" in names
    assert any("X_Shuffle" in n for n in names)
