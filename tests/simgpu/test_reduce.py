"""Unit and property tests for warp vote/reduce primitives."""

import operator
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.simgpu.reduce import (
    all_sync,
    any_sync,
    ballot,
    compact,
    inclusive_scan,
    warp_reduce,
    warp_reduce_max,
    warp_reduce_min,
    warp_reduce_sum,
)


def test_ballot_bitmask():
    assert ballot([True, False, True, True]) == 0b1101
    assert ballot([False] * 4) == 0
    assert ballot([True] * 32) == (1 << 32) - 1


def test_vote_any_all():
    assert any_sync([False, True, False])
    assert not any_sync([False, False])
    assert all_sync([True, True])
    assert not all_sync([True, False])


def test_reduce_min_max_sum():
    values = [5.0, 1.0, 9.0, 3.0]
    assert warp_reduce_min(values) == 1.0
    assert warp_reduce_max(values) == 9.0
    assert warp_reduce_sum(values) == pytest.approx(18.0)


def test_reduce_all_lanes_converge():
    lanes = warp_reduce([4, 7, 1, 9, 2, 8, 5, 3], min)
    assert lanes == [1] * 8


def test_reduce_requires_power_of_two():
    with pytest.raises(KernelError):
        warp_reduce([1, 2, 3], min)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=5), st.integers(0, 4))
def test_reduce_matches_builtin(seed_values, log_n):
    n = 1 << log_n
    rng = random.Random(sum(seed_values))
    values = [rng.randint(-100, 100) for _ in range(n)]
    assert warp_reduce(values, operator.add)[0] == sum(values)
    assert warp_reduce(values, min)[0] == min(values)


def test_inclusive_scan_sum():
    assert inclusive_scan([1, 2, 3, 4], operator.add) == [1, 3, 6, 10]


def test_inclusive_scan_max():
    assert inclusive_scan([3, 1, 4, 1, 5, 9, 2, 6], max) == [3, 3, 4, 4, 5, 9, 9, 9]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 4))
def test_scan_matches_itertools(seed, log_n):
    from itertools import accumulate

    n = 1 << log_n
    rng = random.Random(seed)
    values = [rng.randint(-50, 50) for _ in range(n)]
    assert inclusive_scan(values, operator.add) == list(accumulate(values))


def test_compact():
    assert compact([10, 20, 30, 40], [True, False, False, True]) == [10, 40]
    assert compact([], []) == []


def test_compact_mismatched_lengths():
    with pytest.raises(KernelError):
        compact([1, 2], [True])
