"""Unit tests for the simulated device and its cost model."""

import pytest

from repro.errors import KernelError
from repro.simgpu.device import CostModel, SimGpu


def test_transfer_accounting():
    gpu = SimGpu()
    moved = gpu.to_device("x", [1, 2, 3])
    assert moved == 12
    assert gpu.stats.bytes_h2d == 12
    assert gpu.stats.transfers_h2d == 1
    gpu.from_device("x")
    assert gpu.stats.bytes_d2h == 12
    assert gpu.stats.transfers_d2h == 1


def test_transfer_time_latency_plus_bandwidth():
    cm = CostModel()
    small = cm.transfer_time(0)
    big = cm.transfer_time(10**9)
    assert small == pytest.approx(cm.transfer_latency_s)
    assert big == pytest.approx(cm.transfer_latency_s + 1e9 / cm.transfer_bandwidth_bps)


def test_fetch_does_not_charge():
    gpu = SimGpu()
    gpu.to_device("x", [1])
    before = gpu.stats.snapshot()
    gpu.fetch("x")
    assert gpu.stats.diff(before).total_bytes == 0


def test_launch_runs_kernel_and_charges():
    gpu = SimGpu()

    def kernel(ctx, xs):
        ctx.charge(2)
        return [x + 1 for x in xs]

    out = gpu.launch("inc", 4, kernel, [1, 2, 3, 4])
    assert out == [2, 3, 4, 5]
    assert gpu.stats.kernel_launches == 1
    assert gpu.stats.lane_ops == 8
    assert gpu.stats.kernel_time_s > 0


def test_launch_rejects_zero_threads():
    gpu = SimGpu()
    with pytest.raises(KernelError):
        gpu.launch("bad", 0, lambda ctx: None)


def test_op_time_waves():
    """Threads beyond the core count serialise into waves."""
    cm = CostModel(num_cores=4)
    one_wave = cm.op_time(4, 10)
    two_waves = cm.op_time(5, 10)
    assert two_waves == pytest.approx(2 * one_wave)


def test_mem_ops_slower_than_lane_ops():
    cm = CostModel()
    assert cm.mem_time(32, 1) > cm.op_time(32, 1)


def test_shuffle_within_warp_no_sync():
    gpu = SimGpu()

    def kernel(ctx):
        return ctx.shuffle_xor(list(range(32)), 1)

    gpu.launch("s", 32, kernel)
    assert gpu.stats.sync_count == 0
    assert gpu.stats.shuffle_ops == 32


def test_shuffle_across_warps_costs_barrier():
    gpu = SimGpu()

    def kernel(ctx):
        return ctx.shuffle_xor(list(range(64)), 1)

    gpu.launch("s", 64, kernel)
    assert gpu.stats.sync_count == 1


def test_cost_model_validates_geometry():
    with pytest.raises(KernelError):
        CostModel(num_cores=3)
    with pytest.raises(KernelError):
        CostModel(warp_size=0)


def test_device_memory_limit_enforced():
    from repro.errors import DeviceMemoryError

    gpu = SimGpu(CostModel(device_memory_bytes=16))
    with pytest.raises(DeviceMemoryError):
        gpu.to_device("big", [0] * 100)
