"""Unit tests for GPU statistics accounting."""

import pytest

from repro.simgpu.stats import GpuStats


def test_snapshot_is_independent():
    s = GpuStats(lane_ops=5)
    snap = s.snapshot()
    s.lane_ops = 10
    assert snap.lane_ops == 5


def test_diff():
    s = GpuStats(lane_ops=10, bytes_h2d=100, kernel_time_s=1.0)
    earlier = GpuStats(lane_ops=4, bytes_h2d=40, kernel_time_s=0.25)
    d = s.diff(earlier)
    assert d.lane_ops == 6
    assert d.bytes_h2d == 60
    assert d.kernel_time_s == pytest.approx(0.75)


def test_merge():
    a = GpuStats(lane_ops=1, transfer_time_s=0.5)
    b = GpuStats(lane_ops=2, transfer_time_s=0.25)
    a.merge(b)
    assert a.lane_ops == 3
    assert a.transfer_time_s == pytest.approx(0.75)


def test_reset():
    s = GpuStats(lane_ops=5, bytes_d2h=7, kernel_time_s=1.0)
    s.reset()
    assert s.lane_ops == 0 and s.bytes_d2h == 0 and s.kernel_time_s == 0.0


def test_total_bytes_and_gpu_time():
    s = GpuStats(
        bytes_h2d=10, bytes_d2h=5, kernel_time_s=1.0, transfer_time_s=2.0,
        pipelined_saved_s=0.5,
    )
    assert s.total_bytes == 15
    assert s.gpu_time_s == pytest.approx(2.5)


def test_as_dict_has_all_fields():
    d = GpuStats().as_dict()
    assert "lane_ops" in d and "transfer_time_s" in d and len(d) >= 10
