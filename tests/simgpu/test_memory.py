"""Unit tests for device memory and byte-size estimation."""

import numpy as np
import pytest

from repro.core.messages import Message
from repro.errors import DeviceMemoryError
from repro.simgpu.memory import (
    MESSAGE_BYTES,
    TABLE_ENTRY_BYTES,
    DeviceMemory,
    nbytes_of,
)


def test_nbytes_numpy_exact():
    arr = np.zeros(10, dtype=np.float64)
    assert nbytes_of(arr) == 80


def test_nbytes_scalars():
    assert nbytes_of(1) == 4
    assert nbytes_of(1.5) == 4
    assert nbytes_of(True) == 4
    assert nbytes_of(None) == 0


def test_nbytes_containers_sum():
    assert nbytes_of([1, 2, 3]) == 12
    assert nbytes_of((1.0, 2.0)) == 8
    assert nbytes_of({1, 2}) == 8


def test_nbytes_dict_adds_entry_overhead():
    assert nbytes_of({"a": 1}) == TABLE_ENTRY_BYTES + 4


def test_nbytes_message_packed():
    assert nbytes_of(Message(1, 2, 0.5, 3.0)) == MESSAGE_BYTES


def test_nbytes_unknown_type_raises():
    with pytest.raises(DeviceMemoryError):
        nbytes_of(object())


def test_store_and_fetch():
    mem = DeviceMemory(1024)
    mem.store("x", [1, 2, 3])
    assert mem.fetch("x") == [1, 2, 3]
    assert mem.used_bytes == 12
    assert mem.nbytes("x") == 12


def test_store_replaces_same_name():
    mem = DeviceMemory(1024)
    mem.store("x", [1] * 100)
    mem.store("x", [1])
    assert mem.used_bytes == 4


def test_capacity_enforced():
    mem = DeviceMemory(16)
    mem.store("a", [1, 2])
    with pytest.raises(DeviceMemoryError):
        mem.store("b", [1, 2, 3])
    # failed allocation must not leak
    assert "b" not in mem
    assert mem.free_bytes == 8


def test_fetch_unknown_raises():
    mem = DeviceMemory(16)
    with pytest.raises(DeviceMemoryError):
        mem.fetch("nope")
    with pytest.raises(DeviceMemoryError):
        mem.nbytes("nope")


def test_free_is_idempotent():
    mem = DeviceMemory(16)
    mem.store("x", [1])
    mem.free("x")
    mem.free("x")
    assert mem.used_bytes == 0


def test_invalid_capacity():
    with pytest.raises(DeviceMemoryError):
        DeviceMemory(0)
