"""Unit tests for pipelined transfer streams."""

import pytest

from repro.simgpu.device import SimGpu
from repro.simgpu.stream import PipelinedStream


def _run(pipelined: bool, chunks, work_per_chunk=100000):
    gpu = SimGpu()
    stream = PipelinedStream(gpu, enabled=pipelined)

    def process(i, chunk):
        def kernel(ctx, data):
            ctx.charge(work_per_chunk)
            return sum(data)

        return gpu.launch("work", 32, kernel, chunk)

    results = stream.run(chunks, process)
    return gpu, results


def test_results_identical_with_and_without_pipelining():
    chunks = [[1, 2], [3, 4], [5]]
    _, on = _run(True, chunks)
    _, off = _run(False, chunks)
    assert on == off == [3, 7, 5]


def test_pipelining_saves_time():
    chunks = [list(range(100)) for _ in range(4)]
    gpu_on, _ = _run(True, chunks)
    gpu_off, _ = _run(False, chunks)
    assert gpu_on.stats.pipelined_saved_s > 0
    assert gpu_off.stats.pipelined_saved_s == 0
    assert gpu_on.stats.gpu_time_s < gpu_off.stats.gpu_time_s


def test_saved_time_bounded_by_overlap():
    """The saving cannot exceed total transfer or total kernel time."""
    chunks = [list(range(50)) for _ in range(5)]
    gpu, _ = _run(True, chunks)
    assert gpu.stats.pipelined_saved_s <= gpu.stats.transfer_time_s + 1e-12
    assert gpu.stats.pipelined_saved_s <= gpu.stats.kernel_time_s + 1e-12


def test_empty_chunks_list():
    gpu, results = _run(True, [])
    assert results == []
    assert gpu.stats.pipelined_saved_s == 0


def test_single_chunk_saves_nothing_meaningful():
    gpu, _ = _run(True, [[1, 2, 3]])
    # one chunk: transfer then process, no overlap possible
    assert gpu.stats.pipelined_saved_s == pytest.approx(0.0, abs=1e-12)


def test_chunks_freed_after_processing():
    gpu, _ = _run(True, [[1], [2]])
    assert gpu.memory.used_bytes == 0
