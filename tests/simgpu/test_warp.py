"""Unit tests for warp shuffle primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.simgpu.warp import bundle_spans, lane_id, shuffle_xor, warp_id


def test_shuffle_paper_example():
    """shuffle_xor(2) on 4 lanes exchanges 0<->2 and 1<->3 (Section IV-C2)."""
    assert shuffle_xor(["a", "b", "c", "d"], 2) == ["c", "d", "a", "b"]


def test_shuffle_mask_zero_is_identity():
    values = [1, 2, 3, 4]
    assert shuffle_xor(values, 0) == values


def test_shuffle_is_involution():
    values = list(range(16))
    assert shuffle_xor(shuffle_xor(values, 5), 5) == values


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 31), st.integers(0, 4))
def test_shuffle_is_permutation(mask, log_width):
    """Property: any butterfly shuffle permutes the lanes bijectively."""
    width = 1 << log_width
    mask = mask % width
    values = list(range(32))
    out = shuffle_xor(values, mask, width=width)
    assert sorted(out) == values


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 31))
def test_shuffle_moves_by_xor(mask):
    values = list(range(32))
    out = shuffle_xor(values, mask)
    for j in range(32):
        assert out[j] == j ^ mask


def test_shuffle_respects_sub_warp_width():
    values = list(range(8))
    out = shuffle_xor(values, 1, width=4)
    assert out == [1, 0, 3, 2, 5, 4, 7, 6]


def test_shuffle_bad_geometry():
    with pytest.raises(KernelError):
        shuffle_xor([1, 2, 3], 1, width=3)  # non power of two
    with pytest.raises(KernelError):
        shuffle_xor([1, 2, 3, 4, 5], 1, width=4)  # not a multiple
    with pytest.raises(KernelError):
        shuffle_xor([1, 2, 3, 4], 4, width=4)  # mask escapes the group


def test_lane_and_warp_ids():
    assert lane_id(37, 32) == 5
    assert warp_id(37, 32) == 1


def test_lane_id_rejects_bad_warp():
    with pytest.raises(KernelError):
        lane_id(0, 3)
    with pytest.raises(KernelError):
        warp_id(0, 0)


def test_bundle_spans_exact_division():
    spans = bundle_spans(8, 4)
    assert [list(s) for s in spans] == [[0, 1, 2, 3], [4, 5, 6, 7]]


def test_bundle_spans_ragged_tail():
    spans = bundle_spans(10, 4)
    assert [len(s) for s in spans] == [4, 4, 2]


def test_bundle_spans_rejects_non_power_of_two():
    with pytest.raises(KernelError):
        bundle_spans(10, 3)
