"""Batched == sequential == oracle, on randomized graphs and workloads.

Sequential-vs-batched comparisons are **exact** (same floats, same
order): the batched engine recombines the very same kernel results, so
any drift is a bug.  Index-vs-oracle comparisons round to 9 decimals and
compare tie groups as id *sets*: the oracle's heap Dijkstra may sum edge
weights in a different order, and near-ties a femtometre apart must not
flip an assertion that is really about correctness.
"""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.core import GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

from tests.conformance.oracle import oracle_knn, oracle_range
from tests.conftest import random_location

pytestmark = pytest.mark.conformance

BATCH_SIZES = (1, 8, 64)


def build_index(graph, placements, config=None, t=1.0):
    index = GGridIndex(graph, config or GGridConfig(eta=3, delta_b=8))
    for obj, loc in placements.items():
        index.ingest(Message(obj, loc.edge_id, loc.offset, t))
    return index


def entries_of(answer):
    return [(e.obj, e.distance) for e in answer.entries]


def tie_groups(pairs):
    """Object-id sets keyed by rounded distance."""
    groups: dict[float, set[int]] = {}
    for obj, d in pairs:
        groups.setdefault(round(d, 9), set()).add(obj)
    return groups


def assert_matches_oracle(got, want):
    assert [round(d, 9) for _, d in got] == [round(d, 9) for _, d in want]
    assert tie_groups(got) == tie_groups(want)


def run_batched(graph, placements, queries, batch_size, config=None):
    """Fresh identical index, queries executed in epochs of batch_size."""
    index = build_index(graph, placements, config)
    answers = []
    for start in range(0, len(queries), batch_size):
        answers.extend(index.knn_batch(queries[start : start + batch_size]))
    return answers


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_matches_sequential_and_oracle(seed):
    rng = random.Random(seed)
    graph = grid_road_network(8, 8, seed=seed + 10)
    placements = {obj: random_location(graph, rng) for obj in range(40)}
    queries = [
        (random_location(graph, rng), rng.choice((1, 3, 5, 16)))
        for _ in range(16)
    ]

    sequential = build_index(graph, placements)
    seq_answers = [sequential.knn(loc, k) for loc, k in queries]
    seq_entries = [entries_of(a) for a in seq_answers]

    for (loc, k), got in zip(queries, seq_entries):
        assert_matches_oracle(got, oracle_knn(graph, placements, loc, k))

    for batch_size in BATCH_SIZES:
        batched = run_batched(graph, placements, queries, batch_size)
        assert [entries_of(a) for a in batched] == seq_entries


def test_colocated_objects_tie_on_id():
    graph = grid_road_network(8, 8, seed=4)
    spot = NetworkLocation(5, 0.25 * graph.edge(5).weight)
    rng = random.Random(3)
    placements = {obj: spot for obj in (9, 2, 7, 4)}  # shuffled insertion
    placements.update({obj: random_location(graph, rng) for obj in range(20, 28)})
    query = (NetworkLocation(0, 0.0), 6)

    sequential = build_index(graph, placements)
    got = entries_of(sequential.knn(*query))
    assert_matches_oracle(got, oracle_knn(graph, placements, *query))
    # co-located objects share one distance; ids must come back ascending
    tied = [obj for obj, d in got if d == got[0][1]] if got else []
    assert tied == sorted(tied)

    for batch_size in BATCH_SIZES:
        batched = run_batched(graph, placements, [query], batch_size)
        assert entries_of(batched[0]) == got


def test_k_exceeds_object_count():
    graph = grid_road_network(8, 8, seed=5)
    rng = random.Random(6)
    placements = {obj: random_location(graph, rng) for obj in range(3)}
    query = (random_location(graph, rng), 8)

    sequential = build_index(graph, placements)
    answer = sequential.knn(*query)
    assert answer.used_fallback
    got = entries_of(answer)
    assert_matches_oracle(got, oracle_knn(graph, placements, *query))
    assert len(got) == 3  # everything reachable, never padding

    for batch_size in BATCH_SIZES:
        batched = run_batched(graph, placements, [query], batch_size)
        assert batched[0].used_fallback
        assert entries_of(batched[0]) == got


def test_expansion_over_empty_cells():
    """Objects cluster in one corner; a far query must expand rings of
    empty cells before finding them — batched and sequential alike."""
    graph = grid_road_network(8, 8, seed=7)
    rng = random.Random(8)
    corner_edges = [e.id for e in graph.edges() if e.source < 8][:6]
    placements = {
        obj: NetworkLocation(edge, 0.5 * graph.edge(edge).weight)
        for obj, edge in enumerate(corner_edges)
    }
    far_edge = max(e.id for e in graph.edges())
    queries = [
        (NetworkLocation(far_edge, 0.0), 2),
        (NetworkLocation(far_edge, 0.0), 4),
        (random_location(graph, rng), 3),
    ]

    sequential = build_index(graph, placements)
    seq_entries = [entries_of(sequential.knn(loc, k)) for loc, k in queries]
    for (loc, k), got in zip(queries, seq_entries):
        assert_matches_oracle(got, oracle_knn(graph, placements, loc, k))

    for batch_size in BATCH_SIZES:
        batched = run_batched(graph, placements, queries, batch_size)
        assert [entries_of(a) for a in batched] == seq_entries


def test_range_query_matches_oracle():
    graph = grid_road_network(8, 8, seed=9)
    rng = random.Random(10)
    placements = {obj: random_location(graph, rng) for obj in range(30)}
    index = build_index(graph, placements)
    for radius in (0.5, 2.0, 5.0):
        query = random_location(graph, rng)
        got = entries_of(index.range_query(query, radius))
        want = oracle_range(graph, placements, query, radius)
        assert_matches_oracle(got, want)
