"""Stateful conformance: batched queries stay oracle-exact under
arbitrary interleavings of ingest / removal / maintenance cleaning —
and under chaos fault profiles, where the resilience ladder must keep
every batched answer exact while the device misbehaves.

Hypothesis drives the operation sequence; a dict of latest locations is
the model.  Every batched query epoch is checked against the
brute-force oracle, so any divergence — a stale shared cleaning, a
fallback answering from a half-cleaned snapshot, a fault eating a
message — fails with a minimal reproducing sequence.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.chaos import FaultPlan
from repro.chaos.hub import configure_chaos
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import GpuError
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

from tests.conformance.oracle import oracle_knn

pytestmark = pytest.mark.conformance

_GRAPH = grid_road_network(6, 6, seed=33)
_OBJECTS = range(10)


def _tie_groups(pairs):
    groups: dict[float, set[int]] = {}
    for obj, d in pairs:
        groups.setdefault(round(d, 9), set()).add(obj)
    return groups


class BatchConformanceMachine(RuleBasedStateMachine):
    """One G-Grid index under an optional chaos profile, plus the model."""

    @initialize(profile=st.sampled_from([None, "kernels", "mixed"]))
    def setup(self, profile: str | None) -> None:
        plan = FaultPlan.from_profile(profile, seed=17) if profile else None
        self._previous_plan = configure_chaos(plan)
        self.index = GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=4))
        self.model: dict[int, NetworkLocation] = {}
        self.clock = 0.0
        self.rng = random.Random(7)

    def teardown(self) -> None:
        if hasattr(self, "_previous_plan"):
            configure_chaos(self._previous_plan)

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def _location(self, edge: int, frac: float) -> NetworkLocation:
        return NetworkLocation(edge, frac * _GRAPH.edge(edge).weight)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(
        obj=st.sampled_from(list(_OBJECTS)),
        edge=st.integers(0, _GRAPH.num_edges - 1),
        frac=st.floats(0.0, 1.0),
    )
    def ingest(self, obj: int, edge: int, frac: float) -> None:
        t = self._tick()
        loc = self._location(edge, frac)
        self.index.ingest(Message(obj, loc.edge_id, loc.offset, t))
        self.model[obj] = loc

    @precondition(lambda self: self.model)
    @rule()
    def remove(self) -> None:
        obj = self.rng.choice(sorted(self.model))
        self.index.remove_object(obj, self._tick())
        del self.model[obj]

    @rule(fraction=st.floats(0.1, 0.8))
    def maintenance_clean(self, fraction: float) -> None:
        n = self.index.grid.num_cells
        cells = set(self.rng.sample(range(n), max(1, int(n * fraction))))
        try:
            self.index.clean_cells(cells, t_now=self.clock)
        except GpuError:
            # maintenance cleaning aborts on device faults after rolling
            # back; the invariants below prove nothing was lost or locked
            pass

    @precondition(lambda self: self.model)
    @rule(size=st.integers(1, 5), k=st.integers(1, 6))
    def batch_matches_oracle(self, size: int, k: int) -> None:
        queries = [
            (
                self._location(
                    self.rng.randrange(_GRAPH.num_edges), self.rng.random()
                ),
                k,
            )
            for _ in range(size)
        ]
        answers = self.index.knn_batch(queries, t_now=self.clock)
        for (loc, kk), answer in zip(queries, answers):
            got = [(e.obj, e.distance) for e in answer.entries]
            want = oracle_knn(_GRAPH, self.model, loc, kk)
            assert [round(d, 9) for _, d in got] == [
                round(d, 9) for _, d in want
            ]
            assert _tie_groups(got) == _tie_groups(want)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def no_leaked_locks(self) -> None:
        if not hasattr(self, "index"):
            return
        assert not any(m.locked for m in self.index.lists.values())

    @invariant()
    def object_table_matches_model(self) -> None:
        if not hasattr(self, "index"):
            return
        assert set(self.index.object_table.objects()) == set(self.model)


BatchConformanceMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
TestBatchConformance = BatchConformanceMachine.TestCase
