"""Sharded == single-shard == oracle, including migration and failover.

Sharded-vs-single comparisons are exact (same floats, same order) on the
baseline workloads: every shard runs the same index machinery over the
same graph.  Under heavy churn the comparison rounds to 9 decimals like
the index-vs-oracle checks: a shard holds a *subset* of the objects, so
its restricted-search candidate subgraph differs from the unsharded
index's, and equal-length alternative paths can resolve to values one
ulp apart (see :func:`repro.core.sdist.sdist_kernel`).
"""

from __future__ import annotations

import random

import pytest

from repro.chaos import chaos_context
from repro.chaos.plan import FaultPlan
from repro.cluster import ShardFailurePlan, ShardRouter
from repro.config import GGridConfig
from repro.core import GGridIndex
from repro.mobility.workload import Query, Workload, make_workload
from repro.roadnet.generators import grid_road_network
from repro.server.batching import BatchPolicy
from repro.server.metrics import ReplayReport
from repro.server.server import QueryServer

from tests.conformance.oracle import oracle_knn, oracle_range
from tests.conformance.test_oracle_conformance import (
    assert_matches_oracle,
    entries_of,
    tie_groups,
)
from tests.conftest import random_location

pytestmark = [pytest.mark.conformance, pytest.mark.cluster]

CONFIG = GGridConfig(eta=3, delta_b=8)


def replay_unsharded(graph, workload, batch=None):
    server = QueryServer(
        GGridIndex(graph, CONFIG), batch=batch or BatchPolicy()
    )
    return server.replay(workload, collect_answers=True)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("num_shards", [2, 4])
def test_sharded_matches_single_and_oracle(seed, num_shards):
    rng = random.Random(seed)
    graph = grid_road_network(8, 8, seed=seed + 20)
    workload = make_workload(
        graph,
        num_objects=50,
        duration=8.0,
        num_queries=12,
        k=rng.choice((3, 5, 8)),
        update_frequency=1.0,
        seed=seed + 40,
    )
    _, want = replay_unsharded(graph, workload)
    with ShardRouter(
        graph, CONFIG, num_shards=num_shards, batch=BatchPolicy()
    ) as router:
        _, got = router.replay(workload, collect_answers=True)
    assert [entries_of(a) for a in got] == [entries_of(a) for a in want]


def test_static_scene_matches_oracle_exactly():
    """No updates at query time: cluster answers vs the Dijkstra oracle."""
    rng = random.Random(7)
    graph = grid_road_network(8, 8, seed=27)
    placements = {obj: random_location(graph, rng) for obj in range(40)}
    workload = Workload(initial=placements, updates=[], queries=[])
    with ShardRouter(graph, CONFIG, num_shards=4, batch=BatchPolicy()) as router:
        router.replay(workload)
        report = ReplayReport(index_name=router.name, timing=router.timing)
        for _ in range(12):
            loc, k = random_location(graph, rng), rng.choice((1, 4, 8))
            got = entries_of(router.query(Query(1.0, loc, k), report))
            assert_matches_oracle(got, oracle_knn(graph, placements, loc, k))


def test_objects_migrating_across_shard_boundaries_mid_replay():
    """A workload whose objects sweep the whole grid forces boundary
    crossings; answers must stay identical to the single server (rounded:
    high churn shifts each shard's candidate subgraph, see module doc)."""
    graph = grid_road_network(10, 10, seed=31)
    workload = make_workload(
        graph,
        num_objects=80,
        duration=12.0,
        num_queries=16,
        k=8,
        update_frequency=2.0,  # high churn => many ownership changes
        seed=13,
    )
    _, want = replay_unsharded(graph, workload)
    with ShardRouter(
        graph, CONFIG, num_shards=4, batch=BatchPolicy()
    ) as router:
        report, got = router.replay(workload, collect_answers=True)
    assert report.shard_migrations > 0, "workload never crossed a boundary"
    assert len(got) == len(want)
    for g, w in zip(got, want):
        g_entries, w_entries = entries_of(g), entries_of(w)
        assert [round(d, 9) for _, d in g_entries] == [
            round(d, 9) for _, d in w_entries
        ]
        assert tie_groups(g_entries) == tie_groups(w_entries)


def test_failover_mid_epoch_under_chaos_profile():
    """A chaos profile drives both device faults and a derived shard
    death mid-replay; the promoted standby must answer identically
    (rounded: chaos retries can reorder float accumulation)."""
    graph = grid_road_network(8, 8, seed=37)
    workload = make_workload(
        graph,
        num_objects=60,
        duration=10.0,
        num_queries=12,
        k=6,
        update_frequency=1.0,
        seed=17,
    )
    plan = FaultPlan.from_profile("mixed", seed=7)
    failure = ShardFailurePlan.from_fault_plan(plan, 4, 10.0)
    assert failure.failures, "mixed profile must derive a shard failure"
    batch = BatchPolicy(batch_size=4)

    with chaos_context(plan):
        _, want = replay_unsharded(graph, workload, batch=batch)
    with chaos_context(plan):
        with ShardRouter(
            graph,
            CONFIG,
            num_shards=4,
            batch=batch,
            failure_plan=failure,
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
            promoted = sum(s.promotions for s in router.shards.values())
    assert promoted == 1
    assert len(got) == len(want)
    for g, w in zip(got, want):
        g_entries, w_entries = entries_of(g), entries_of(w)
        assert [round(d, 9) for _, d in g_entries] == [
            round(d, 9) for _, d in w_entries
        ]
        assert tie_groups(g_entries) == tie_groups(w_entries)


def test_range_queries_match_oracle():
    rng = random.Random(19)
    graph = grid_road_network(8, 8, seed=41)
    placements = {obj: random_location(graph, rng) for obj in range(30)}
    workload = Workload(initial=placements, updates=[], queries=[])
    with ShardRouter(graph, CONFIG, num_shards=4) as router:
        router.replay(workload)
        for radius in (0.5, 2.0, 5.0):
            query = random_location(graph, rng)
            got = entries_of(router.range_query(query, radius, t_now=1.0))
            want = oracle_range(graph, placements, query, radius)
            assert_matches_oracle(got, want)
