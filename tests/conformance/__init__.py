"""Oracle-backed conformance suite for the batched execution engine.

Asserts, for randomized graphs and workloads, that batched execution,
sequential execution and a brute-force pure-python oracle all agree —
including ties, ``k > |objects|`` and empty-cell expansions — and that
batching strictly reduces GPU work without changing any answer.
"""
