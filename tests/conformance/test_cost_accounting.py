"""Cost-accounting regressions: batching must save real, counted work.

The simulated GPU's deterministic counters let the engine's economics be
asserted exactly: an overlapping epoch must do strictly fewer kernel
launches, host<->device transfers and cell cleanings than sequential
execution of the same queries — and a batch of one must cost *exactly*
the same as a single query, counter for counter.
"""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.core import BatchExecStats, GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network

from tests.conftest import random_location

pytestmark = pytest.mark.conformance

_GRAPH = grid_road_network(12, 12, seed=13)


def _loaded_index(n_objects=80, seed=5):
    rng = random.Random(seed)
    index = GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=8))
    for obj in range(n_objects):
        loc = random_location(_GRAPH, rng)
        index.ingest(Message(obj, loc.edge_id, loc.offset, 1.0))
    return index


def _overlapping_queries(k=4):
    """16 queries drawn from 4 locations — heavy candidate-cell overlap."""
    rng = random.Random(9)
    anchors = [random_location(_GRAPH, rng) for _ in range(4)]
    return [(anchors[i % 4], k) for i in range(16)]


def _entries(answers):
    return [[(e.obj, e.distance) for e in a.entries] for a in answers]


def test_batched_strictly_cheaper_than_sequential():
    queries = _overlapping_queries()

    sequential = _loaded_index()
    seq_before = sequential.stats.snapshot()
    seq_answers = [sequential.knn(loc, k) for loc, k in queries]
    seq = sequential.stats.diff(seq_before)
    seq_cells = sequential.cleaner.cells_cleaned_total
    seq_passes = sequential.cleaner.cleanings_total

    batched = _loaded_index()
    stats = BatchExecStats()
    bat_before = batched.stats.snapshot()
    bat_answers = batched.knn_batch(queries, exec_stats=stats)
    bat = batched.stats.diff(bat_before)

    assert _entries(bat_answers) == _entries(seq_answers)
    assert bat.kernel_launches < seq.kernel_launches
    assert bat.transfers_h2d + bat.transfers_d2h < seq.transfers_h2d + seq.transfers_d2h
    assert bat.total_bytes < seq.total_bytes
    assert batched.cleaner.cells_cleaned_total < seq_cells
    assert batched.cleaner.cleanings_total < seq_passes
    assert stats.cells_deduped > 0
    # what the epoch deduplicated is exactly the per-query demand gap
    assert stats.cell_requests == sum(a.cells_cleaned for a in bat_answers)
    assert stats.cells_cleaned == batched.cleaner.cells_cleaned_total


def test_batch_of_one_costs_exactly_the_same():
    query = (_overlapping_queries()[0][0], 4)

    single = _loaded_index()
    single_answer = single.knn(*query)

    batched = _loaded_index()
    stats = BatchExecStats()
    [batch_answer] = batched.knn_batch([query], exec_stats=stats)

    assert [(e.obj, e.distance) for e in batch_answer.entries] == [
        (e.obj, e.distance) for e in single_answer.entries
    ]
    # every counter — launches, bytes, simulated seconds — must agree
    assert batched.stats.as_dict() == single.stats.as_dict()
    assert batched.cleaner.cells_cleaned_total == single.cleaner.cells_cleaned_total
    assert batched.cleaner.cleanings_total == single.cleaner.cleanings_total
    assert stats.queries == 1
    assert stats.cells_deduped == 0


def test_fused_launch_accounting():
    """One multi-query epoch: three fused launches carry all the jobs."""
    queries = _overlapping_queries()
    index = _loaded_index()
    before = index.stats.snapshot()
    passes_before = index.cleaner.cleanings_total
    answers = index.knn_batch(queries)
    delta = index.stats.diff(before)
    cleaning_passes = index.cleaner.cleanings_total - passes_before

    jobs = sum(1 for a in answers if not a.used_fallback)
    assert jobs > 1
    # SDist + First-k + Unresolved, one fused launch each
    assert delta.batched_launches == 3
    assert delta.batched_jobs == 3 * jobs
    # beyond the cleaning pipeline's own readbacks, the candidate sets
    # of the whole epoch came back in one shared transfer
    assert delta.transfers_d2h == cleaning_passes + 1


def test_modelled_work_is_preserved():
    """Fusion saves overheads, never modelled work: the lane/shuffle op
    counts of a batch equal those of sequential execution."""
    queries = _overlapping_queries()

    sequential = _loaded_index()
    seq_before = sequential.stats.snapshot()
    for loc, k in queries:
        sequential.knn(loc, k)
    seq = sequential.stats.diff(seq_before)

    batched = _loaded_index()
    bat_before = batched.stats.snapshot()
    batched.knn_batch(queries)
    bat = batched.stats.diff(bat_before)

    # phase-2 work per query is identical; phase-1 work *shrinks* because
    # deduplicated cells are shipped and shuffled once, so the batch can
    # only do less, never more
    assert bat.lane_ops <= seq.lane_ops
    assert bat.shuffle_ops <= seq.shuffle_ops
