"""A brute-force pure-python oracle for kNN and range queries.

Deliberately independent of the library's search code: its own
binary-heap Dijkstra over the raw road network and its own
location-to-location distance rule, mirroring only the *conventions*
documented in :mod:`repro.roadnet.location`:

* leaving a location ``<e, d>`` costs ``e.weight - d`` to reach
  ``dest(e)`` (offset 0 also stands on ``source(e)`` at cost 0);
* reaching an object at ``<e', d'>`` costs ``dist(source(e')) + d'``,
  with the same-edge shortcut ``d' - d`` when the object lies ahead on
  the query's own edge.

Results come back in the canonical order the library documents in
:mod:`repro.core.ordering`: ascending distance, ties broken by ascending
object id.  The conformance tests assert that sequential and batched
index execution both reproduce these answers.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation

_INF = float("inf")


def oracle_vertex_distances(
    graph: RoadNetwork, query: NetworkLocation
) -> dict[int, float]:
    """Shortest distance from ``query`` to every reachable vertex."""
    edge = graph.edge(query.edge_id)
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []

    def relax(vertex: int, d: float) -> None:
        if d < dist.get(vertex, _INF):
            dist[vertex] = d
            heapq.heappush(heap, (d, vertex))

    relax(edge.dest, edge.weight - query.offset)
    if query.offset == 0.0:
        relax(edge.source, 0.0)
    while heap:
        d, vertex = heapq.heappop(heap)
        if d > dist.get(vertex, _INF):
            continue
        for out in graph.out_edges(vertex):
            relax(out.dest, d + out.weight)
    return dist


def oracle_location_distance(
    graph: RoadNetwork,
    dist: Mapping[int, float],
    query: NetworkLocation,
    target: NetworkLocation,
) -> float:
    """Distance from ``query`` to ``target`` given the vertex distances."""
    source = graph.edge(target.edge_id).source
    via_source = dist.get(source, _INF) + target.offset
    if target.edge_id == query.edge_id and target.offset >= query.offset:
        return min(via_source, target.offset - query.offset)
    return via_source


def oracle_knn(
    graph: RoadNetwork,
    objects: Mapping[int, NetworkLocation],
    query: NetworkLocation,
    k: int,
) -> list[tuple[int, float]]:
    """The true k nearest objects in canonical ``(distance, id)`` order."""
    dist = oracle_vertex_distances(graph, query)
    scored = [
        (obj, d)
        for obj, loc in objects.items()
        if (d := oracle_location_distance(graph, dist, query, loc)) < _INF
    ]
    scored.sort(key=lambda kv: (kv[1], kv[0]))
    return scored[:k]


def oracle_range(
    graph: RoadNetwork,
    objects: Mapping[int, NetworkLocation],
    query: NetworkLocation,
    radius: float,
) -> list[tuple[int, float]]:
    """All objects within ``radius``, in canonical ``(distance, id)`` order."""
    dist = oracle_vertex_distances(graph, query)
    hits = [
        (obj, d)
        for obj, loc in objects.items()
        if (d := oracle_location_distance(graph, dist, query, loc)) <= radius
    ]
    hits.sort(key=lambda kv: (kv[1], kv[0]))
    return hits
