"""Unit tests for the shortest-path primitives."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.dijkstra import (
    bounded_dijkstra,
    dijkstra,
    dijkstra_with_paths,
    multi_source_dijkstra,
    reconstruct_path,
    shortest_path_distance,
)
from repro.roadnet.generators import grid_road_network


def test_line_graph_distances(line_graph):
    dist = dijkstra(line_graph, 0)
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}


def test_directed_triangle_asymmetry(triangle_graph):
    assert shortest_path_distance(triangle_graph, 0, 2) == 3.0  # 0->1->2
    assert shortest_path_distance(triangle_graph, 2, 1) == 4.0  # 2->0->1


def test_unreachable_is_inf():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)
    assert shortest_path_distance(g, 1, 0) == float("inf")


def test_same_vertex_distance_zero(line_graph):
    assert shortest_path_distance(line_graph, 2, 2) == 0.0


def test_targets_early_exit(line_graph):
    dist = dijkstra(line_graph, 0, targets=[1])
    assert dist[1] == 1.0
    assert 4 not in dist  # search stopped before the far end


def test_multi_source_takes_min(line_graph):
    dist = multi_source_dijkstra(line_graph, {0: 0.0, 4: 0.0})
    assert dist[2] == 2.0
    assert dist[1] == 1.0 and dist[3] == 1.0


def test_multi_source_with_offsets(line_graph):
    dist = multi_source_dijkstra(line_graph, {0: 10.0, 4: 0.0})
    assert dist[0] == min(10.0, 4.0)  # reachable from seed 4 via the path


def test_bounded_dijkstra_respects_radius(line_graph):
    dist = bounded_dijkstra(line_graph, 0, radius=2.5)
    assert set(dist) == {0, 1, 2}


def test_bounded_dijkstra_zero_radius(line_graph):
    assert set(bounded_dijkstra(line_graph, 2, radius=0.0)) == {2}


def test_paths_reconstruction(line_graph):
    dist, parent = dijkstra_with_paths(line_graph, 0)
    assert reconstruct_path(parent, 0, 3) == [0, 1, 2, 3]
    assert reconstruct_path(parent, 0, 0) == [0]


def test_reconstruct_unreached_returns_empty():
    assert reconstruct_path({}, 0, 7) == []


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_dijkstra_matches_bellman_ford(seed):
    """Property: Dijkstra distances equal a naive Bellman-Ford's."""
    rng = random.Random(seed)
    g = grid_road_network(4, 4, seed=rng.randrange(1000))
    source = rng.randrange(g.num_vertices)
    fast = dijkstra(g, source)
    slow = {v.id: float("inf") for v in g.vertices()}
    slow[source] = 0.0
    for _ in range(g.num_vertices):
        for e in g.edges():
            if slow[e.source] + e.weight < slow[e.dest]:
                slow[e.dest] = slow[e.source] + e.weight
    for v, d in fast.items():
        assert slow[v] == pytest.approx(d)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.5, 5.0))
def test_bounded_is_restriction_of_full(seed, radius):
    """Property: bounded search equals the full search filtered by radius."""
    g = grid_road_network(5, 5, seed=seed % 100)
    source = seed % g.num_vertices
    full = dijkstra(g, source)
    bounded = bounded_dijkstra(g, source, radius)
    assert bounded == {v: d for v, d in full.items() if d <= radius}


def test_triangle_inequality_holds(small_graph):
    rng = random.Random(0)
    for _ in range(10):
        a, b, c = (rng.randrange(small_graph.num_vertices) for _ in range(3))
        ab = shortest_path_distance(small_graph, a, b)
        bc = shortest_path_distance(small_graph, b, c)
        ac = shortest_path_distance(small_graph, a, c)
        assert ac <= ab + bc + 1e-9
