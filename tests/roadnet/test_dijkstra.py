"""Unit tests for the shortest-path primitives."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.dijkstra import (
    BoundedSearch,
    SearchStats,
    bounded_dijkstra,
    dijkstra,
    dijkstra_with_paths,
    multi_source_dijkstra,
    reconstruct_path,
    shortest_path_distance,
)
from repro.roadnet.generators import grid_road_network


def test_line_graph_distances(line_graph):
    dist = dijkstra(line_graph, 0)
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}


def test_directed_triangle_asymmetry(triangle_graph):
    assert shortest_path_distance(triangle_graph, 0, 2) == 3.0  # 0->1->2
    assert shortest_path_distance(triangle_graph, 2, 1) == 4.0  # 2->0->1


def test_unreachable_is_inf():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)
    assert shortest_path_distance(g, 1, 0) == float("inf")


def test_same_vertex_distance_zero(line_graph):
    assert shortest_path_distance(line_graph, 2, 2) == 0.0


def test_targets_early_exit(line_graph):
    dist = dijkstra(line_graph, 0, targets=[1])
    assert dist[1] == 1.0
    assert 4 not in dist  # search stopped before the far end


def test_multi_source_takes_min(line_graph):
    dist = multi_source_dijkstra(line_graph, {0: 0.0, 4: 0.0})
    assert dist[2] == 2.0
    assert dist[1] == 1.0 and dist[3] == 1.0


def test_multi_source_with_offsets(line_graph):
    dist = multi_source_dijkstra(line_graph, {0: 10.0, 4: 0.0})
    assert dist[0] == min(10.0, 4.0)  # reachable from seed 4 via the path


def test_bounded_dijkstra_respects_radius(line_graph):
    dist = bounded_dijkstra(line_graph, 0, radius=2.5)
    assert set(dist) == {0, 1, 2}


def test_bounded_dijkstra_zero_radius(line_graph):
    assert set(bounded_dijkstra(line_graph, 2, radius=0.0)) == {2}


def test_paths_reconstruction(line_graph):
    dist, parent = dijkstra_with_paths(line_graph, 0)
    assert reconstruct_path(parent, 0, 3) == [0, 1, 2, 3]
    assert reconstruct_path(parent, 0, 0) == [0]


def test_reconstruct_unreached_returns_empty():
    assert reconstruct_path({}, 0, 7) == []


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_dijkstra_matches_bellman_ford(seed):
    """Property: Dijkstra distances equal a naive Bellman-Ford's."""
    rng = random.Random(seed)
    g = grid_road_network(4, 4, seed=rng.randrange(1000))
    source = rng.randrange(g.num_vertices)
    fast = dijkstra(g, source)
    slow = {v.id: float("inf") for v in g.vertices()}
    slow[source] = 0.0
    for _ in range(g.num_vertices):
        for e in g.edges():
            if slow[e.source] + e.weight < slow[e.dest]:
                slow[e.dest] = slow[e.source] + e.weight
    for v, d in fast.items():
        assert slow[v] == pytest.approx(d)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.5, 5.0))
def test_bounded_is_restriction_of_full(seed, radius):
    """Property: bounded search equals the full search filtered by radius."""
    g = grid_road_network(5, 5, seed=seed % 100)
    source = seed % g.num_vertices
    full = dijkstra(g, source)
    bounded = bounded_dijkstra(g, source, radius)
    assert bounded == {v: d for v, d in full.items() if d <= radius}


def test_bounded_search_breaks_instead_of_draining(line_graph):
    """Regression: a pop beyond the radius must *stop* the search.

    Pops are monotone non-decreasing, so once one exceeds the radius
    nothing later can settle — the old code `continue`d and drained the
    rest of the heap one stale pop at a time.  With three over-radius
    seeds queued, breaking pops exactly once past the radius; draining
    would pop all three.
    """
    seeds = {0: 0.0, 2: 10.0, 3: 11.0, 4: 12.0}
    stats = SearchStats()
    dist = multi_source_dijkstra(line_graph, seeds, radius=1.0, stats=stats)
    assert dist == {0: 0.0, 1: 1.0}
    assert stats.settled == 2
    # pops: (0.0, 0), (1.0, 1), then (10.0, 2) triggers the break —
    # seeds 3 and 4 are never popped
    assert stats.pops == 3


def test_bounded_search_stats_settled_matches_result(line_graph):
    stats = SearchStats()
    dist = multi_source_dijkstra(line_graph, {0: 0.0}, radius=2.5, stats=stats)
    assert stats.settled == len(dist) == 3


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.5, 5.0))
def test_shared_array_search_matches_dict_search(seed, radius):
    """Property: BoundedSearch == multi_source_dijkstra, pops included."""
    g = grid_road_network(5, 5, seed=seed % 100)
    source = seed % g.num_vertices
    ref_stats = SearchStats()
    ref = multi_source_dijkstra(g, {source: 0.0}, radius=radius, stats=ref_stats)
    search = BoundedSearch(g)
    got_stats = SearchStats()
    settled = search.run(source, radius, stats=got_stats)
    got = {int(v): float(d) for v, d in zip(settled, search.distances(settled))}
    assert got == ref  # exact float equality: same additions, same order
    assert (got_stats.pops, got_stats.settled) == (ref_stats.pops, ref_stats.settled)


def test_shared_array_search_resets_between_runs(small_graph):
    """A second run must not see the first run's distances or stamps."""
    search = BoundedSearch(small_graph)
    search.run(0, 5.0)
    for source, radius in ((3, 1.5), (0, 0.0), (7, 2.5)):
        settled = search.run(source, radius)
        ref = bounded_dijkstra(small_graph, source, radius)
        got = {int(v): float(d) for v, d in zip(settled, search.distances(settled))}
        assert got == ref
        # is_settled answers for the *latest* run only
        verts = np.arange(small_graph.num_vertices, dtype=np.int64)
        assert set(verts[search.is_settled(verts)].tolist()) == set(ref)


def test_triangle_inequality_holds(small_graph):
    rng = random.Random(0)
    for _ in range(10):
        a, b, c = (rng.randrange(small_graph.num_vertices) for _ in range(3))
        ab = shortest_path_distance(small_graph, a, b)
        bc = shortest_path_distance(small_graph, b, c)
        ac = shortest_path_distance(small_graph, a, c)
        assert ac <= ab + bc + 1e-9
