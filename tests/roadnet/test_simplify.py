"""Tests for degree-2 chain contraction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.dijkstra import shortest_path_distance
from repro.roadnet.generators import grid_road_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.simplify import contract_chains


def _chain_graph() -> RoadNetwork:
    """junction - a - b - junction (two-way), plus a stub off each end."""
    g = RoadNetwork()
    j1, a, b, j2, s1, s2 = (g.add_vertex(float(i), 0.0) for i in range(6))
    g.add_bidirectional_edge(j1, a, 1.0)
    g.add_bidirectional_edge(a, b, 2.0)
    g.add_bidirectional_edge(b, j2, 3.0)
    g.add_bidirectional_edge(j1, s1, 1.0)
    g.add_bidirectional_edge(j2, s2, 1.0)
    return g


def test_chain_contracted_to_single_edge():
    """s1 - j1 - a - b - j2 - s2 is ONE chain: only the two degree-1
    endpoints survive, joined by an edge carrying the full length."""
    g = _chain_graph()
    result = contract_chains(g)
    assert result.kept == [4, 5]  # the stubs
    s1, s2 = result.new_id[4], result.new_id[5]
    weights = [e.weight for e in result.graph.out_edges(s1) if e.dest == s2]
    assert weights == [pytest.approx(8.0)]  # 1 + 1 + 2 + 3 + 1


def test_distances_preserved_between_kept():
    g = _chain_graph()
    result = contract_chains(g)
    for old_u in result.kept:
        for old_v in result.kept:
            d_orig = shortest_path_distance(g, old_u, old_v)
            d_simple = shortest_path_distance(
                result.graph, result.new_id[old_u], result.new_id[old_v]
            )
            assert d_simple == pytest.approx(d_orig)


def test_one_way_chain():
    g = RoadNetwork()
    a, t, b = g.add_vertices(3)
    g.add_edge(a, t, 1.0)  # a -> t -> b is a one-way chain through t
    g.add_edge(t, b, 2.0)
    g.add_edge(b, a, 5.0)
    # anchor a and b with stubs so they are real junctions
    for junction in (a, b):
        stub = g.add_vertex()
        g.add_bidirectional_edge(junction, stub, 1.0)
    result = contract_chains(g)
    assert t not in result.new_id
    assert a in result.new_id and b in result.new_id
    d = shortest_path_distance(result.graph, result.new_id[a], result.new_id[b])
    assert d == pytest.approx(3.0)


def test_no_transit_vertices_is_identity_shaped():
    g = RoadNetwork()
    # K4: every vertex has three neighbours, so nothing is a chain
    vs = g.add_vertices(4)
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_bidirectional_edge(vs[i], vs[j], 1.0)
    result = contract_chains(g)
    assert len(result.kept) == 4
    assert result.graph.num_edges == 12


def test_pure_cycle_keeps_anchor():
    g = RoadNetwork()
    a, b, c = g.add_vertices(3)
    g.add_bidirectional_edge(a, b, 1.0)
    g.add_bidirectional_edge(b, c, 1.0)
    g.add_bidirectional_edge(a, c, 1.0)
    result = contract_chains(g)  # a two-way triangle is all shape vertices
    assert len(result.kept) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_distances_preserved_property(seed):
    """Property: on random road networks, all kept-to-kept shortest
    distances survive contraction exactly."""
    rng = random.Random(seed)
    g = grid_road_network(5, 5, edge_ratio=2.2, seed=seed % 23)
    result = contract_chains(g)
    assert result.graph.num_vertices <= g.num_vertices
    samples = min(6, len(result.kept))
    for _ in range(samples):
        old_u = rng.choice(result.kept)
        old_v = rng.choice(result.kept)
        d_orig = shortest_path_distance(g, old_u, old_v)
        d_simple = shortest_path_distance(
            result.graph, result.new_id[old_u], result.new_id[old_v]
        )
        assert d_simple == pytest.approx(d_orig)


def test_simplification_shrinks_sparse_grids():
    g = grid_road_network(8, 8, edge_ratio=2.05, seed=3)
    result = contract_chains(g)
    assert result.graph.num_vertices < g.num_vertices