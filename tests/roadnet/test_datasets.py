"""Unit tests for the named evaluation datasets."""

import pytest

from repro.errors import GraphError
from repro.roadnet.datasets import (
    DATASET_ORDER,
    DATASET_SPECS,
    dataset_table,
    load_dataset,
)


def test_all_six_datasets_present():
    assert set(DATASET_ORDER) == {"NY", "COL", "FLA", "CAL", "LKS", "USA"}
    assert set(DATASET_SPECS) == set(DATASET_ORDER)


def test_size_ordering_preserved():
    sizes = [load_dataset(name, scale=1 / 4000).num_vertices for name in DATASET_ORDER]
    assert sizes == sorted(sizes)


def test_edge_ratio_matches_table2():
    for name in ("NY", "USA"):
        spec = DATASET_SPECS[name]
        g = load_dataset(name, scale=1 / 1000)
        assert g.num_edges / g.num_vertices == pytest.approx(
            spec.edge_ratio, rel=0.25
        )


def test_datasets_strongly_connected():
    for name in ("NY", "COL"):
        assert load_dataset(name).is_strongly_connected()


def test_load_is_cached():
    assert load_dataset("NY") is load_dataset("NY")


def test_case_insensitive():
    assert load_dataset("ny") is load_dataset("NY")


def test_unknown_dataset_raises():
    with pytest.raises(GraphError):
        load_dataset("MARS")


def test_bad_scale_raises():
    with pytest.raises(GraphError):
        load_dataset("NY", scale=0.0)


def test_minimum_size_floor():
    g = load_dataset("NY", scale=1e-9)
    assert g.num_vertices >= 100


def test_dataset_table_rows():
    rows = dataset_table()
    assert [r["dataset"] for r in rows] == list(DATASET_ORDER)
    for row in rows:
        assert row["V"] > 0 and row["E"] > row["V"]
        assert row["paper_V"] == DATASET_SPECS[row["dataset"]].paper_vertices
