"""Property and unit tests for Contraction Hierarchies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.dijkstra import shortest_path_distance
from repro.roadnet.generators import grid_road_network, random_road_network


@pytest.fixture(scope="module")
def ch_small(small_graph):
    return ContractionHierarchy(small_graph)


def test_matches_dijkstra_exhaustive_pairs(ch_small, small_graph):
    rng = random.Random(1)
    for _ in range(30):
        s = rng.randrange(small_graph.num_vertices)
        t = rng.randrange(small_graph.num_vertices)
        assert ch_small.distance(s, t) == pytest.approx(
            shortest_path_distance(small_graph, s, t)
        )


def test_same_vertex(ch_small):
    assert ch_small.distance(5, 5) == 0.0


def test_unreachable():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)
    ch = ContractionHierarchy(g)
    assert ch.distance(1, 0) == float("inf")
    assert ch.distance(0, 1) == pytest.approx(1.0)


def test_directed_asymmetry(triangle_graph):
    ch = ContractionHierarchy(triangle_graph)
    assert ch.distance(0, 2) == pytest.approx(3.0)
    assert ch.distance(2, 1) == pytest.approx(4.0)


def test_ranks_are_a_permutation(ch_small, small_graph):
    assert sorted(ch_small.rank) == list(range(small_graph.num_vertices))


def test_search_space_smaller_than_dijkstra(small_graph, ch_small):
    """The hierarchy must settle fewer vertices than plain Dijkstra on
    average across random pairs."""
    from repro.roadnet.dijkstra import multi_source_dijkstra

    rng = random.Random(2)
    ch_total = dijkstra_total = 0
    for _ in range(12):
        s = rng.randrange(small_graph.num_vertices)
        t = rng.randrange(small_graph.num_vertices)
        if s == t:
            continue
        _, settled = ch_small.distance_with_stats(s, t)
        ch_total += settled
        dijkstra_total += len(
            multi_source_dijkstra(small_graph, {s: 0.0}, targets=[t])
        )
    assert ch_total < dijkstra_total


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10**6))
def test_matches_dijkstra_property(seed):
    rng = random.Random(seed)
    graph = grid_road_network(5, 5, seed=seed % 19)
    ch = ContractionHierarchy(graph)
    for _ in range(5):
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        assert ch.distance(s, t) == pytest.approx(
            shortest_path_distance(graph, s, t)
        )


def test_on_random_geometric_graph():
    graph = random_road_network(30, seed=5)
    ch = ContractionHierarchy(graph)
    rng = random.Random(6)
    for _ in range(10):
        s, t = rng.randrange(30), rng.randrange(30)
        assert ch.distance(s, t) == pytest.approx(
            shortest_path_distance(graph, s, t)
        )


def test_shortcut_count_reasonable(small_graph, ch_small):
    # a planar-ish grid should not explode in shortcuts
    assert ch_small.shortcuts_added < 4 * small_graph.num_edges
