"""Tests for road-network statistics."""

import pytest

from repro.roadnet.graph import RoadNetwork
from repro.roadnet.metrics import GraphStats, degree_histogram, estimate_diameter


def test_stats_of_small_graph(small_graph):
    stats = GraphStats.of(small_graph)
    assert stats.vertices == small_graph.num_vertices
    assert stats.edges == small_graph.num_edges
    assert stats.edge_ratio == pytest.approx(stats.edges / stats.vertices)
    assert stats.min_out_degree >= 1
    assert stats.max_out_degree >= stats.mean_out_degree >= stats.min_out_degree
    assert stats.min_weight > 0
    assert stats.strongly_connected


def test_stats_of_empty_graph():
    stats = GraphStats.of(RoadNetwork())
    assert stats.vertices == 0 and stats.edges == 0
    assert stats.total_weight == 0.0


def test_degree_histogram_sums_to_vertices(small_graph):
    hist = degree_histogram(small_graph)
    assert sum(hist.values()) == small_graph.num_vertices
    total_edges = sum(d * c for d, c in hist.items())
    assert total_edges == small_graph.num_edges


def test_diameter_estimate_line(line_graph):
    # the 0-1-2-3-4 path has diameter exactly 4
    assert estimate_diameter(line_graph, samples=3, seed=1) == pytest.approx(4.0)


def test_diameter_lower_bounds_true_diameter(small_graph):
    from repro.roadnet.dijkstra import dijkstra

    estimate = estimate_diameter(small_graph, samples=4, seed=2)
    true = max(
        max(dijkstra(small_graph, v.id).values()) for v in small_graph.vertices()
    )
    assert estimate <= true + 1e-9
    assert estimate >= 0.5 * true  # double sweep is usually close


def test_diameter_empty_graph():
    assert estimate_diameter(RoadNetwork()) == 0.0
