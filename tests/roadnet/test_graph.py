"""Unit tests for the RoadNetwork container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.roadnet.graph import RoadNetwork


def test_add_vertex_assigns_sequential_ids():
    g = RoadNetwork()
    assert g.add_vertex() == 0
    assert g.add_vertex(1.0, 2.0) == 1
    assert g.num_vertices == 2
    assert g.vertex(1).x == 1.0 and g.vertex(1).y == 2.0


def test_add_vertices_bulk():
    g = RoadNetwork()
    ids = g.add_vertices(5)
    assert ids == [0, 1, 2, 3, 4]
    assert g.num_vertices == 5


def test_add_edge_records_endpoints_and_weight():
    g = RoadNetwork()
    g.add_vertices(2)
    eid = g.add_edge(0, 1, 2.5)
    e = g.edge(eid)
    assert (e.source, e.dest, e.weight) == (0, 1, 2.5)


def test_add_edge_rejects_unknown_vertex():
    g = RoadNetwork()
    g.add_vertex()
    with pytest.raises(GraphError):
        g.add_edge(0, 1, 1.0)
    with pytest.raises(GraphError):
        g.add_edge(5, 0, 1.0)


def test_add_edge_rejects_self_loop():
    g = RoadNetwork()
    g.add_vertex()
    with pytest.raises(GraphError):
        g.add_edge(0, 0, 1.0)


def test_negative_weight_rejected():
    g = RoadNetwork()
    g.add_vertices(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, -0.5)


def test_bidirectional_edge_creates_both_directions():
    g = RoadNetwork()
    g.add_vertices(2)
    e1, e2 = g.add_bidirectional_edge(0, 1, 3.0)
    assert g.edge(e1).source == 0 and g.edge(e1).dest == 1
    assert g.edge(e2).source == 1 and g.edge(e2).dest == 0
    assert g.edge(e1).weight == g.edge(e2).weight == 3.0


def test_out_and_in_edges(triangle_graph):
    g = triangle_graph
    assert [e.dest for e in g.out_edges(0)] == [1]
    assert [e.source for e in g.in_edges(0)] == [2]
    assert g.out_degree(1) == 1 and g.in_degree(1) == 1


def test_neighbors(triangle_graph):
    assert triangle_graph.neighbors(0) == [1]


def test_unknown_vertex_and_edge_raise(triangle_graph):
    with pytest.raises(GraphError):
        triangle_graph.vertex(99)
    with pytest.raises(GraphError):
        triangle_graph.edge(99)
    with pytest.raises(GraphError):
        triangle_graph.out_edges(-1)


def test_coordinates_shape(small_graph):
    coords = small_graph.coordinates()
    assert coords.shape == (small_graph.num_vertices, 2)
    assert coords.dtype == np.float64


def test_coordinates_empty_graph():
    assert RoadNetwork().coordinates().shape == (0, 2)


def test_csr_out_matches_adjacency(triangle_graph):
    indptr, targets, weights, edge_ids = triangle_graph.csr_out()
    assert list(indptr) == [0, 1, 2, 3]
    assert list(targets) == [1, 2, 0]
    assert list(weights) == [1.0, 2.0, 3.0]
    assert list(edge_ids) == [0, 1, 2]


def test_csr_in_holds_sources(triangle_graph):
    indptr, sources, weights, _ = triangle_graph.csr_in()
    # in-edge of vertex 0 comes from vertex 2 with weight 3
    assert list(sources[indptr[0] : indptr[1]]) == [2]
    assert list(weights[indptr[0] : indptr[1]]) == [3.0]


def test_csr_invalidated_on_mutation(triangle_graph):
    g = triangle_graph
    g.csr_out()
    v = g.add_vertex()
    g.add_edge(0, v, 1.0)
    indptr, targets, _, _ = g.csr_out()
    assert len(indptr) == g.num_vertices + 1
    assert len(targets) == g.num_edges


def test_reversed_flips_edges(triangle_graph):
    r = triangle_graph.reversed()
    assert r.num_vertices == 3 and r.num_edges == 3
    assert [e.dest for e in r.out_edges(1)] == [0]


def test_subgraph_induces_edges(small_graph):
    keep = list(range(10))
    sub, mapping = small_graph.subgraph(keep)
    assert sub.num_vertices == 10
    assert set(mapping.keys()) == set(keep)
    kept = set(keep)
    expected = sum(
        1 for e in small_graph.edges() if e.source in kept and e.dest in kept
    )
    assert sub.num_edges == expected


def test_subgraph_preserves_weights(line_graph):
    sub, mapping = line_graph.subgraph([1, 2])
    assert sub.num_edges == 2
    assert all(e.weight == 1.0 for e in sub.edges())


def test_strongly_connected_positive(small_graph):
    assert small_graph.is_strongly_connected()


def test_strongly_connected_negative():
    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)  # no way back
    assert not g.is_strongly_connected()


def test_single_vertex_is_connected():
    g = RoadNetwork()
    g.add_vertex()
    assert g.is_strongly_connected()


def test_total_weight(triangle_graph):
    assert triangle_graph.total_weight() == 6.0
