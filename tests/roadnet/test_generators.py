"""Unit tests for the synthetic road-network generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.roadnet.generators import (
    grid_dims_for,
    grid_road_network,
    random_road_network,
)


def test_grid_vertex_count():
    g = grid_road_network(6, 7, seed=0)
    assert g.num_vertices == 42


def test_grid_is_strongly_connected():
    assert grid_road_network(10, 10, seed=5).is_strongly_connected()


def test_grid_edge_ratio_close_to_target():
    g = grid_road_network(20, 20, edge_ratio=2.6, seed=2)
    ratio = g.num_edges / g.num_vertices
    assert 2.2 <= ratio <= 2.8


def test_grid_deterministic_per_seed():
    a = grid_road_network(8, 8, seed=7)
    b = grid_road_network(8, 8, seed=7)
    assert a.num_edges == b.num_edges
    assert [(e.source, e.dest, e.weight) for e in a.edges()] == [
        (e.source, e.dest, e.weight) for e in b.edges()
    ]


def test_grid_different_seeds_differ():
    a = grid_road_network(8, 8, seed=1)
    b = grid_road_network(8, 8, seed=2)
    assert [(e.source, e.dest) for e in a.edges()] != [
        (e.source, e.dest) for e in b.edges()
    ]


def test_grid_positive_weights():
    g = grid_road_network(6, 6, seed=3)
    assert all(e.weight > 0 for e in g.edges())


def test_grid_rejects_degenerate_dims():
    with pytest.raises(GraphError):
        grid_road_network(1, 5)
    with pytest.raises(GraphError):
        grid_road_network(5, 1)


def test_grid_edges_come_in_pairs():
    """Every road is two directed edges of equal weight."""
    g = grid_road_network(5, 5, seed=4)
    pairs = {}
    for e in g.edges():
        pairs.setdefault((min(e.source, e.dest), max(e.source, e.dest)), []).append(
            e.weight
        )
    for weights in pairs.values():
        assert len(weights) == 2
        assert weights[0] == weights[1]


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 100))
def test_grid_always_connected(rows, cols, seed):
    assert grid_road_network(rows, cols, seed=seed).is_strongly_connected()


def test_random_network_connected():
    g = random_road_network(40, seed=9)
    assert g.num_vertices == 40
    assert g.is_strongly_connected()


def test_random_network_rejects_tiny():
    with pytest.raises(GraphError):
        random_road_network(1)


def test_grid_dims_product_close():
    rows, cols = grid_dims_for(100)
    assert abs(rows * cols - 100) <= 10


def test_grid_dims_aspect():
    rows, cols = grid_dims_for(400, aspect=0.25)
    assert rows < cols


def test_grid_dims_rejects_tiny():
    with pytest.raises(GraphError):
        grid_dims_for(2)
