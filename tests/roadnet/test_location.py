"""Unit tests for on-edge network locations and distance conventions."""

import pytest

from repro.errors import GraphError
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance


def test_validate_accepts_in_range(line_graph):
    loc = NetworkLocation(0, 0.5)
    assert loc.validate(line_graph) is loc


def test_validate_rejects_out_of_range(line_graph):
    with pytest.raises(GraphError):
        NetworkLocation(0, 1.5).validate(line_graph)
    with pytest.raises(GraphError):
        NetworkLocation(0, -0.1).validate(line_graph)


def test_validate_rejects_unknown_edge(line_graph):
    with pytest.raises(GraphError):
        NetworkLocation(999, 0.0).validate(line_graph)


def test_clamp(line_graph):
    assert NetworkLocation(0, 2.0).clamp(line_graph).offset == 1.0
    assert NetworkLocation(0, -1.0).clamp(line_graph).offset == 0.0


def test_at_source():
    assert NetworkLocation(3, 0.0).at_source()
    assert not NetworkLocation(3, 0.1).at_source()


def test_xy_interpolates(line_graph):
    # edge 0 runs from vertex 0 (0,0) to vertex 1 (1,0)
    x, y = NetworkLocation(0, 0.5).xy(line_graph)
    assert x == pytest.approx(0.5)
    assert y == pytest.approx(0.0)


def test_entry_costs_mid_edge(line_graph):
    # edge 0: 0 -> 1, weight 1; standing halfway leaves 0.5 to the dest
    seeds = entry_costs(line_graph, NetworkLocation(0, 0.5))
    assert seeds == {1: 0.5}


def test_entry_costs_at_source_vertex(line_graph):
    seeds = entry_costs(line_graph, NetworkLocation(0, 0.0))
    assert seeds == {1: 1.0, 0: 0.0}


def test_location_distance_via_source(line_graph):
    q = NetworkLocation(0, 0.0)  # at vertex 0
    dist = multi_source_dijkstra(line_graph, entry_costs(line_graph, q))
    # target halfway along edge 2->3 (edge id 4 is 2->3)
    target_edge = next(
        e for e in line_graph.edges() if e.source == 2 and e.dest == 3
    )
    target = NetworkLocation(target_edge.id, 0.25)
    assert location_distance(line_graph, dist, q, target) == pytest.approx(2.25)


def test_location_distance_same_edge_ahead(line_graph):
    q = NetworkLocation(0, 0.2)
    dist = multi_source_dijkstra(line_graph, entry_costs(line_graph, q))
    target = NetworkLocation(0, 0.7)
    assert location_distance(line_graph, dist, q, target) == pytest.approx(0.5)


def test_location_distance_same_edge_behind_goes_around(line_graph):
    q = NetworkLocation(0, 0.7)
    dist = multi_source_dijkstra(line_graph, entry_costs(line_graph, q))
    target = NetworkLocation(0, 0.2)
    # must finish edge 0 (0.3), go back 1->0 (1.0), then 0.2 along edge 0
    assert location_distance(line_graph, dist, q, target) == pytest.approx(1.5)


def test_location_distance_unreachable(triangle_graph):
    # triangle 0->1->2->0; from a location on edge 0 everything is
    # reachable, but an empty dist map means unreachable
    q = NetworkLocation(0, 0.5)
    assert location_distance(triangle_graph, {}, q, NetworkLocation(1, 0.0)) == float(
        "inf"
    )
