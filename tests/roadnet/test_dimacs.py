"""Unit tests for DIMACS graph I/O."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.roadnet.dimacs import read_co, read_gr, write_co, write_gr
from repro.roadnet.generators import grid_road_network


def test_roundtrip_gr(tmp_path, small_graph):
    path = tmp_path / "g.gr"
    write_gr(small_graph, path, comment="test graph")
    g = read_gr(path)
    assert g.num_vertices == small_graph.num_vertices
    assert g.num_edges == small_graph.num_edges
    for a, b in zip(g.edges(), small_graph.edges()):
        assert (a.source, a.dest) == (b.source, b.dest)
        assert a.weight == pytest.approx(b.weight)


def test_roundtrip_gzip(tmp_path):
    g0 = grid_road_network(4, 4, seed=2)
    path = tmp_path / "g.gr.gz"
    write_gr(g0, path)
    with gzip.open(path) as fh:  # really gzipped
        assert fh.read(1)
    g = read_gr(path)
    assert g.num_edges == g0.num_edges


def test_roundtrip_coordinates(tmp_path, small_graph):
    gr, co = tmp_path / "g.gr", tmp_path / "g.co"
    write_gr(small_graph, gr)
    write_co(small_graph, co)
    g = read_gr(gr)
    read_co(co, g)
    assert g.vertex(5).x == pytest.approx(small_graph.vertex(5).x)
    assert g.vertex(5).y == pytest.approx(small_graph.vertex(5).y)


def test_read_known_file(tmp_path):
    path = tmp_path / "tiny.gr"
    path.write_text("c comment\np sp 3 2\na 1 2 5\na 2 3 7\n")
    g = read_gr(path)
    assert g.num_vertices == 3
    assert g.edge(0).source == 0 and g.edge(0).dest == 1 and g.edge(0).weight == 5.0


def test_missing_problem_line(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("a 1 2 5\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_duplicate_problem_line(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 1\np sp 2 1\na 1 2 5\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_arc_count_mismatch(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 2\na 1 2 5\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_vertex_out_of_range(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 1\na 1 9 5\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_unknown_record(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 1\nz 1 2 5\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_malformed_arc(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 1\na 1 2\n")
    with pytest.raises(GraphFormatError):
        read_gr(path)


def test_bad_coordinate_line(tmp_path, line_graph):
    path = tmp_path / "bad.co"
    path.write_text("v 1 2\n")
    with pytest.raises(GraphFormatError):
        read_co(path, line_graph)


def test_coordinate_for_unknown_vertex(tmp_path, line_graph):
    path = tmp_path / "bad.co"
    path.write_text("v 99 1.0 2.0\n")
    with pytest.raises(GraphFormatError):
        read_co(path, line_graph)
