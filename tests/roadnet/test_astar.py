"""Unit and property tests for A* and bidirectional Dijkstra."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.astar import (
    astar,
    bidirectional_dijkstra,
    euclidean_heuristic_scale,
)
from repro.roadnet.dijkstra import shortest_path_distance
from repro.roadnet.generators import grid_road_network


def test_heuristic_scale_admissible(small_graph):
    import math

    scale = euclidean_heuristic_scale(small_graph)
    assert scale > 0
    for e in small_graph.edges():
        a, b = small_graph.vertex(e.source), small_graph.vertex(e.dest)
        assert scale * math.hypot(a.x - b.x, a.y - b.y) <= e.weight + 1e-9


def test_heuristic_scale_no_coordinates(triangle_graph):
    # all vertices at the origin: scale collapses to 0 (plain Dijkstra)
    assert euclidean_heuristic_scale(triangle_graph) == 0.0


def test_astar_matches_dijkstra(small_graph):
    rng = random.Random(1)
    for _ in range(15):
        s = rng.randrange(small_graph.num_vertices)
        g = rng.randrange(small_graph.num_vertices)
        d, _ = astar(small_graph, s, g)
        assert d == pytest.approx(shortest_path_distance(small_graph, s, g))


def test_astar_settles_fewer_vertices(small_graph):
    """Goal direction must help on average across random pairs."""
    from repro.roadnet.dijkstra import multi_source_dijkstra

    rng = random.Random(2)
    wins = total = 0
    for _ in range(10):
        s, g = rng.randrange(64), rng.randrange(64)
        if s == g:
            continue
        _, settled = astar(small_graph, s, g)
        dijkstra_settled = len(
            multi_source_dijkstra(small_graph, {s: 0.0}, targets=[g])
        )
        wins += settled <= dijkstra_settled
        total += 1
    assert wins >= total * 0.6


def test_astar_same_vertex():
    g = grid_road_network(3, 3, seed=0)
    assert astar(g, 4, 4) == (0.0, 0)


def test_astar_unreachable():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertex(0, 0)
    g.add_vertex(1, 0)
    g.add_edge(0, 1, 1.0)
    d, _ = astar(g, 1, 0)
    assert d == float("inf")


def test_bidirectional_matches_dijkstra(small_graph):
    rng = random.Random(3)
    for _ in range(15):
        s = rng.randrange(small_graph.num_vertices)
        g = rng.randrange(small_graph.num_vertices)
        d, _ = bidirectional_dijkstra(small_graph, s, g)
        assert d == pytest.approx(shortest_path_distance(small_graph, s, g))


def test_bidirectional_directed_asymmetry(triangle_graph):
    d1, _ = bidirectional_dijkstra(triangle_graph, 0, 2)
    d2, _ = bidirectional_dijkstra(triangle_graph, 2, 1)
    assert d1 == pytest.approx(3.0)
    assert d2 == pytest.approx(4.0)


def test_bidirectional_unreachable():
    from repro.roadnet.graph import RoadNetwork

    g = RoadNetwork()
    g.add_vertices(2)
    g.add_edge(0, 1, 1.0)
    d, _ = bidirectional_dijkstra(g, 1, 0)
    assert d == float("inf")


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_all_three_agree_property(seed):
    """Property: Dijkstra, A* and bidirectional agree on random pairs."""
    rng = random.Random(seed)
    g = grid_road_network(5, 5, seed=seed % 17)
    s = rng.randrange(g.num_vertices)
    t = rng.randrange(g.num_vertices)
    reference = shortest_path_distance(g, s, t)
    assert astar(g, s, t)[0] == pytest.approx(reference)
    assert bidirectional_dijkstra(g, s, t)[0] == pytest.approx(reference)
