"""Stateful fuzzing: random operation interleavings vs a model oracle.

Hypothesis drives arbitrary sequences of ingest / move / remove / clean /
kNN / range / batch operations against one G-Grid index, while a trivial
model (a dict of latest locations) predicts the exact answers.  Any
divergence — an object lost by the X-shuffle, a stale snapshot after
cleaning, a marker race — fails with a minimal reproducing sequence.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance

_GRAPH = grid_road_network(6, 6, seed=21)
_OBJECTS = range(12)


class GGridMachine(RuleBasedStateMachine):
    """The index under test plus the oracle model."""

    @initialize()
    def setup(self) -> None:
        self.index = GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=4))
        self.model: dict[int, NetworkLocation] = {}
        self.clock = 0.0
        self.rng = random.Random(99)

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def _random_location(self, edge: int, frac: float) -> NetworkLocation:
        weight = _GRAPH.edge(edge).weight
        return NetworkLocation(edge, frac * weight)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(
        obj=st.sampled_from(list(_OBJECTS)),
        edge=st.integers(0, _GRAPH.num_edges - 1),
        frac=st.floats(0.0, 1.0),
    )
    def ingest(self, obj: int, edge: int, frac: float) -> None:
        t = self._tick()
        loc = self._random_location(edge, frac)
        self.index.ingest(Message(obj, loc.edge_id, loc.offset, t))
        self.model[obj] = loc

    @precondition(lambda self: self.model)
    @rule()
    def remove(self) -> None:
        obj = self.rng.choice(sorted(self.model))
        t = self._tick()
        self.index.remove_object(obj, t)
        del self.model[obj]

    @rule(fraction=st.floats(0.1, 1.0))
    def clean_some_cells(self, fraction: float) -> None:
        n = self.index.grid.num_cells
        count = max(1, int(n * fraction))
        cells = set(self.rng.sample(range(n), count))
        self.index.clean_cells(cells, t_now=self.clock)

    @precondition(lambda self: self.model)
    @rule(
        edge=st.integers(0, _GRAPH.num_edges - 1),
        frac=st.floats(0.0, 1.0),
        k=st.integers(1, 6),
    )
    def knn_matches_model(self, edge: int, frac: float, k: int) -> None:
        query = self._random_location(edge, frac)
        got = self.index.knn(query, k, t_now=self.clock).distances()
        want = self._oracle_knn(query, k)
        assert [round(x, 9) for x in got] == [round(x, 9) for x in want]

    @precondition(lambda self: self.model)
    @rule(
        edge=st.integers(0, _GRAPH.num_edges - 1),
        radius=st.floats(0.5, 4.0),
    )
    def range_matches_model(self, edge: int, radius: float) -> None:
        query = self._random_location(edge, 0.0)
        got = [
            (round(e.distance, 9), e.obj)
            for e in self.index.range_query(query, radius, t_now=self.clock).entries
        ]
        want = self._oracle_range(query, radius)
        assert got == want

    @precondition(lambda self: self.model)
    @rule(k=st.integers(1, 4))
    def batch_matches_model(self, k: int) -> None:
        queries = [
            (self._random_location(self.rng.randrange(_GRAPH.num_edges), 0.5), k)
            for _ in range(2)
        ]
        answers = self.index.knn_batch(queries, t_now=self.clock)
        for (loc, kk), answer in zip(queries, answers):
            want = self._oracle_knn(loc, kk)
            assert [round(x, 9) for x in answer.distances()] == [
                round(x, 9) for x in want
            ]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def object_table_matches_model(self) -> None:
        if not hasattr(self, "index"):
            return
        table = self.index.object_table.objects()
        assert set(table) == set(self.model)
        for obj, loc in self.model.items():
            assert table[obj].edge == loc.edge_id
            assert abs(table[obj].offset - loc.offset) < 1e-12

    @invariant()
    def no_leaked_locks(self) -> None:
        if not hasattr(self, "index"):
            return
        assert not any(m.locked for m in self.index.lists.values())

    # ------------------------------------------------------------------
    # oracle
    # ------------------------------------------------------------------
    def _oracle_knn(self, query: NetworkLocation, k: int) -> list[float]:
        dist = multi_source_dijkstra(_GRAPH, entry_costs(_GRAPH, query))
        scored = sorted(
            location_distance(_GRAPH, dist, query, loc)
            for loc in self.model.values()
        )
        return [d for d in scored if d < float("inf")][:k]

    def _oracle_range(self, query, radius) -> list[tuple[float, int]]:
        dist = multi_source_dijkstra(_GRAPH, entry_costs(_GRAPH, query))
        hits = sorted(
            (round(location_distance(_GRAPH, dist, query, loc), 9), obj)
            for obj, loc in self.model.items()
            if location_distance(_GRAPH, dist, query, loc) <= radius
        )
        return hits


GGridMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestGGridStateful = GGridMachine.TestCase
