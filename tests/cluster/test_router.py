"""ShardRouter behaviour: routing, scatter-gather accounting, failover,
migration, rebalancing, and the fanout-1 == unsharded counter identity."""

from __future__ import annotations

import pytest

from repro.cluster import (
    FAILOVER_REPLICA,
    FAILOVER_WAL,
    RebalancePolicy,
    ShardFailurePlan,
    ShardRouter,
)
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ClusterError
from repro.mobility.workload import make_workload
from repro.obs.hub import Observability
from repro.server.batching import BatchPolicy
from repro.server.metrics import ReplayReport
from repro.server.server import QueryServer

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def workload(small_graph):
    return make_workload(
        small_graph,
        num_objects=60,
        duration=10.0,
        num_queries=10,
        k=6,
        update_frequency=1.0,
        seed=5,
    )


def exact_answers(answers):
    return [[(e.obj, e.distance) for e in a.entries] for a in answers]


def unsharded_baseline(graph, config, workload, batch=None):
    server = QueryServer(
        GGridIndex(graph, config), batch=batch or BatchPolicy()
    )
    return server.replay(workload, collect_answers=True)


class TestConstruction:
    def test_zero_shards_rejected(self, small_graph, fast_config):
        with pytest.raises(ClusterError):
            ShardRouter(small_graph, fast_config, num_shards=0)

    def test_name_carries_shard_count(self, small_graph, fast_config):
        with ShardRouter(small_graph, fast_config, num_shards=3) as router:
            assert router.name == "G-Grid x3"
            assert router.num_shards == 3

    def test_close_removes_owned_tempdir(self, small_graph, fast_config):
        router = ShardRouter(small_graph, fast_config, num_shards=2)
        directory = router.directory
        assert directory.exists()
        router.close()
        assert not directory.exists()

    def test_explicit_directory_survives_close(
        self, tmp_path, small_graph, fast_config
    ):
        router = ShardRouter(
            small_graph, fast_config, num_shards=2, directory=tmp_path
        )
        router.close()
        assert (tmp_path / "shard-000").exists()


class TestAnswersMatchUnsharded:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sequential_replay(
        self, small_graph, fast_config, workload, num_shards
    ):
        _, want = unsharded_baseline(small_graph, fast_config, workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=num_shards,
            batch=BatchPolicy(),
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
        # exact float equality: the same machinery computes the same
        # distances regardless of which shard computes them
        assert exact_answers(got) == exact_answers(want)

    def test_batched_replay(self, small_graph, fast_config, workload):
        batch = BatchPolicy(batch_size=4)
        _, want = unsharded_baseline(
            small_graph, fast_config, workload, batch=batch
        )
        with ShardRouter(
            small_graph, fast_config, num_shards=4, batch=batch
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
        assert exact_answers(got) == exact_answers(want)

    def test_without_replicas(self, small_graph, fast_config, workload):
        _, want = unsharded_baseline(small_graph, fast_config, workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=2,
            replicas=False,
            batch=BatchPolicy(),
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
        assert exact_answers(got) == exact_answers(want)


class TestCostAccounting:
    def test_fanout_one_is_counter_identical_to_unsharded(
        self, small_graph, fast_config, workload
    ):
        """Satellite 6 regression: a 1-shard router must report exactly
        the deterministic counters an unsharded server reports."""
        batch = BatchPolicy(batch_size=4)
        want_report, want = unsharded_baseline(
            small_graph, fast_config, workload, batch=batch
        )
        with ShardRouter(
            small_graph, fast_config, num_shards=1, batch=batch
        ) as router:
            got_report, got = router.replay(workload, collect_answers=True)
        assert exact_answers(got) == exact_answers(want)

        def counters(report: ReplayReport):
            return (
                report.n_updates,
                report.update_touches,
                report.gpu_seconds,
                report.transfer_bytes,
                report.n_batches,
                [
                    (
                        r.gpu_s,
                        r.transfer_bytes,
                        r.used_fallback,
                        r.degraded_rung,
                        r.retries,
                    )
                    for r in report.query_records
                ],
            )

        assert counters(got_report) == counters(want_report)
        assert all(r.fanout == 1 for r in got_report.query_records)
        assert got_report.mean_fanout == 1.0
        assert got_report.shard_migrations == 0

    def test_sharded_report_fields(self, small_graph, fast_config, workload):
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=4,
            batch=BatchPolicy(),
        ) as router:
            report, _ = router.replay(workload)
        assert sum(report.shard_updates.values()) == report.n_updates
        assert set(report.shard_updates) <= set(router.shard_map.shard_ids)
        assert len(report.query_records) == report.n_queries
        for record in report.query_records:
            assert record.fanout == len(record.shards) >= 1
        by_shard = report.queries_by_shard()
        assert sum(by_shard.values()) == report.total_fanout
        d = report.as_dict()
        assert d["mean_fanout"] == report.mean_fanout
        assert d["shard_migrations"] == report.shard_migrations
        assert d["shard_updates"] == dict(sorted(report.shard_updates.items()))

    def test_unsharded_report_omits_shard_keys(
        self, small_graph, fast_config, workload
    ):
        report, _ = unsharded_baseline(small_graph, fast_config, workload)
        d = report.as_dict()
        assert "mean_fanout" in d
        assert "shard_updates" not in d
        assert "shard_migrations" not in d

    def test_pruning_keeps_mean_fanout_below_shard_count(
        self, small_graph, fast_config, workload
    ):
        """Acceptance criterion: at >= 4 shards the bound must prune."""
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=4,
            batch=BatchPolicy(),
        ) as router:
            report, _ = router.replay(workload)
        assert 1.0 <= report.mean_fanout < 4.0


class TestMigration:
    def test_boundary_crossing_object_changes_owner(
        self, small_graph, fast_config
    ):
        with ShardRouter(
            small_graph, fast_config, num_shards=2
        ) as router:
            report = ReplayReport(index_name=router.name, timing=router.timing)
            # find two edges owned by different shards
            edges = {}
            for edge in range(small_graph.num_edges):
                sid = router.shard_map.shard_of_cell(
                    router.grid.cell_of_edge(edge)
                )
                edges.setdefault(sid, edge)
                if len(edges) == 2:
                    break
            assert len(edges) == 2, "graph too small to straddle two shards"
            (sid_a, edge_a), (sid_b, edge_b) = sorted(edges.items())
            router.update(Message(1, edge_a, 0.0, 1.0), report)
            assert router._owner[1] == sid_a
            assert report.shard_migrations == 0
            router.update(Message(1, edge_b, 0.0, 2.0), report)
            assert router._owner[1] == sid_b
            assert report.shard_migrations == 1
            assert report.n_updates == 2  # migration is not a workload update
            assert router.num_objects() == 1
            assert router.shards[sid_a].index.num_objects == 0


class TestFailover:
    def test_replica_promotion(self, small_graph, fast_config, workload):
        plan = ShardFailurePlan.single(0, 5.0)
        _, want = unsharded_baseline(small_graph, fast_config, workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=2,
            failure_plan=plan,
            batch=BatchPolicy(),
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
            assert router.shards[0].promotions == 1
            assert router.shards[0].replica is None  # promoted: no standby
            assert router.shards[1].promotions == 0
        assert exact_answers(got) == exact_answers(want)

    def test_wal_rebuild_without_replica(
        self, small_graph, fast_config, workload
    ):
        plan = ShardFailurePlan.single(1, 5.0)
        _, want = unsharded_baseline(small_graph, fast_config, workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=2,
            replicas=False,
            failure_plan=plan,
            batch=BatchPolicy(),
        ) as router:
            _, got = router.replay(workload, collect_answers=True)
            assert router.shards[1].promotions == 1
        assert exact_answers(got) == exact_answers(want)

    def test_fail_shard_reports_mode(self, small_graph, fast_config):
        with ShardRouter(small_graph, fast_config, num_shards=2) as router:
            report = ReplayReport(index_name=router.name, timing=router.timing)
            router.update(Message(1, 0, 0.1, 1.0), report)
            assert router.fail_shard(0) == FAILOVER_REPLICA
            # second failover of the same shard: replica gone, WAL replay
            assert router.fail_shard(0) == FAILOVER_WAL
            assert router.shards[0].promotions == 2
        with pytest.raises(ClusterError):
            router.fail_shard(99)

    def test_failover_warning_is_rate_limited_through_registry(
        self, small_graph, fast_config
    ):
        obs = Observability()
        with ShardRouter(
            small_graph, fast_config, num_shards=2, obs=obs
        ) as router:
            for _ in range(3):
                router.fail_shard(0)
        warnings = [w for w in obs.registry.warnings if "[shard_router]" in w]
        # 3 failovers, warn on the 1st only (next at the 100th)
        assert len(warnings) == 1
        assert "1 shards failed over to a promoted standby" in warnings[0]
        assert "mode=" in warnings[0]


class TestRebalance:
    def test_hot_shard_splits_and_answers_still_match(
        self, small_graph, fast_config, workload
    ):
        policy = RebalancePolicy(
            hot_share=0.4, min_ops=64, check_every=32, max_shards=6
        )
        _, want = unsharded_baseline(small_graph, fast_config, workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=2,
            rebalance=policy,
            batch=BatchPolicy(),
        ) as router:
            report, got = router.replay(workload, collect_answers=True)
            assert router.num_shards > 2  # the skewed workload split a shard
            assert len(router.shards) == router.num_shards
        assert report.shard_migrations > 0
        assert exact_answers(got) == exact_answers(want)


class TestRangeQueries:
    def test_range_matches_single_index(self, small_graph, fast_config, workload):
        index = GGridIndex(small_graph, fast_config)
        server = QueryServer(index, batch=BatchPolicy())
        server.replay(workload)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=4,
            batch=BatchPolicy(),
        ) as router:
            router.replay(workload)
            t = workload.queries[-1].t if workload.queries else 10.0
            for q in workload.queries[:4]:
                want = index.range_query(q.location, 3.0, t_now=t)
                got = router.range_query(q.location, 3.0, t_now=t)
                assert [(e.obj, e.distance) for e in got.entries] == [
                    (e.obj, e.distance) for e in want.entries
                ]
