"""Shard map invariants and the cell-distance bound's soundness."""

from __future__ import annotations

import random

import pytest

from repro.cluster import CellDistanceBound, ShardMap, ShardRange
from repro.config import GGridConfig
from repro.core.graph_grid import GraphGrid
from repro.errors import ClusterError
from repro.roadnet.location import NetworkLocation

from tests.conformance.oracle import oracle_vertex_distances
from tests.conftest import random_location

pytestmark = pytest.mark.cluster


class TestShardMap:
    def test_balanced_covers_every_cell_once(self):
        m = ShardMap.balanced(16, 3)
        counts = {sid: 0 for sid in m.shard_ids}
        for cell in range(16):
            counts[m.shard_of_cell(cell)] += 1
        assert sum(counts.values()) == 16
        # near-equal: sizes differ by at most one cell
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_ranges_are_contiguous_z_runs(self):
        m = ShardMap.balanced(64, 5)
        for r in m.ranges:
            cells = list(m.cells_of(r.shard_id))
            assert cells == list(range(r.lo, r.hi + 1))

    def test_one_shard_owns_everything(self):
        m = ShardMap.balanced(7, 1)
        assert {m.shard_of_cell(c) for c in range(7)} == {0}

    def test_more_shards_than_cells_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap.balanced(4, 5)

    def test_zero_shards_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap.balanced(4, 0)

    def test_gap_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap(8, [ShardRange(0, 0, 2), ShardRange(1, 4, 7)])

    def test_overlap_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap(8, [ShardRange(0, 0, 4), ShardRange(1, 4, 7)])

    def test_duplicate_shard_id_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap(8, [ShardRange(0, 0, 3), ShardRange(0, 4, 7)])

    def test_short_cover_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap(8, [ShardRange(0, 0, 5)])

    def test_inverted_range_rejected(self):
        with pytest.raises(ClusterError):
            ShardRange(0, 5, 2)

    def test_cell_out_of_range_rejected(self):
        m = ShardMap.balanced(8, 2)
        with pytest.raises(ClusterError):
            m.shard_of_cell(8)

    def test_unknown_shard_rejected(self):
        m = ShardMap.balanced(8, 2)
        with pytest.raises(ClusterError):
            m.cells_of(9)


class TestSplit:
    def test_split_peels_tail_onto_new_id(self):
        m = ShardMap.balanced(16, 2)  # 0: [0,7], 1: [8,15]
        new = m.split(0, at_cell=4)
        assert new == 2
        assert list(m.cells_of(0)) == [0, 1, 2, 3]
        assert list(m.cells_of(2)) == [4, 5, 6, 7]
        assert list(m.cells_of(1)) == list(range(8, 16))
        assert [m.shard_of_cell(c) for c in (3, 4, 8)] == [0, 2, 1]

    def test_split_keeps_map_valid(self):
        m = ShardMap.balanced(16, 2)
        m.split(1, at_cell=12)
        owners = [m.shard_of_cell(c) for c in range(16)]
        assert owners == [0] * 8 + [1] * 4 + [2] * 4
        assert m.num_shards == 3

    def test_repeated_splits_never_reuse_ids(self):
        m = ShardMap.balanced(16, 1)
        first = m.split(0, at_cell=8)
        second = m.split(first, at_cell=12)
        assert len({0, first, second}) == 3

    def test_split_outside_range_rejected(self):
        m = ShardMap.balanced(16, 2)
        with pytest.raises(ClusterError):
            m.split(0, at_cell=0)  # would empty the left half
        with pytest.raises(ClusterError):
            m.split(0, at_cell=8)  # belongs to shard 1
        with pytest.raises(ClusterError):
            m.split(7, at_cell=4)  # unknown shard


class TestCellDistanceBound:
    @pytest.fixture(scope="class")
    def grid(self, small_graph):
        return GraphGrid.build(small_graph, GGridConfig(eta=3, delta_b=8))

    @pytest.fixture(scope="class")
    def bound(self, grid):
        return CellDistanceBound(grid)

    def test_self_distance_zero(self, bound):
        for cell in range(bound.num_cells):
            assert bound.distances_from(cell)[cell] == 0.0

    def test_cached(self, bound):
        assert bound.distances_from(0) is bound.distances_from(0)

    def test_bad_cell_rejected(self, bound):
        with pytest.raises(ClusterError):
            bound.distances_from(bound.num_cells)

    def test_cell_distance_never_exceeds_vertex_distance(
        self, small_graph, grid, bound
    ):
        """The cell graph is a relaxation: for any pair of vertices the
        cell-graph distance between their cells lower-bounds the true
        network distance (the soundness core of the pruning rule)."""
        rng = random.Random(11)
        for _ in range(20):
            u = rng.randrange(small_graph.num_vertices)
            start = NetworkLocation(small_graph.out_edges(u)[0].id, 0.0)
            dist = oracle_vertex_distances(small_graph, start)
            from_cell = bound.distances_from(grid.cell_of_vertex[u])
            for v, d in dist.items():
                assert from_cell[grid.cell_of_vertex[v]] <= d + 1e-9

    def test_lower_bound_is_sound_for_locations(
        self, small_graph, grid, bound
    ):
        """lb(query, cells(object)) <= true distance(query, object), for
        random query/object location pairs — including same-edge pairs,
        which is the case the dest-cell-only bound gets wrong."""
        rng = random.Random(23)
        for _ in range(40):
            q = random_location(small_graph, rng)
            if rng.random() < 0.25:
                # force the same-edge-ahead shortcut case
                w = small_graph.edge(q.edge_id).weight
                o = NetworkLocation(q.edge_id, rng.uniform(q.offset, w))
            else:
                o = random_location(small_graph, rng)
            dist = oracle_vertex_distances(small_graph, q)
            source = small_graph.edge(o.edge_id).source
            true = dist.get(source, float("inf")) + o.offset
            if o.edge_id == q.edge_id and o.offset >= q.offset:
                true = min(true, o.offset - q.offset)
            cell = grid.cell_of_edge(o.edge_id)
            lb = bound.lower_bound_to_cells(q, range(cell, cell + 1))
            assert lb <= true + 1e-9

    def test_unreachable_cells_bound_to_infinity(self):
        """Two disconnected components: the bound must report inf, which
        the router treats as 'this shard cannot hold any answer'."""
        from repro.roadnet.graph import RoadNetwork

        g = RoadNetwork()
        for i in range(4):
            g.add_vertex(float(i % 2), float(i // 2))
        g.add_bidirectional_edge(0, 1, 1.0)
        g.add_bidirectional_edge(2, 3, 1.0)
        grid = GraphGrid.build(g, GGridConfig(delta_c=1, eta=3, delta_b=8))
        bound = CellDistanceBound(grid)
        c0 = grid.cell_of_vertex[0]
        c2 = grid.cell_of_vertex[2]
        if c0 != c2:
            assert bound.distances_from(c0)[c2] == float("inf")
