"""Distributed tracing across the cluster: one scatter-gather kNN query
must render as a single trace tree — router root, per-shard probe spans
(context-propagated over the encoded ``traceparent`` header), the
shards' ladder-rung spans, and the merge span — and tracing must never
change an answer."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ShardFailurePlan, ShardRouter
from repro.core.messages import Message
from repro.mobility.workload import Query, make_workload
from repro.obs.hub import Observability
from repro.obs.tracing import spans_to_chrome_events
from repro.server.batching import BatchPolicy
from repro.server.metrics import ReplayReport

pytestmark = [pytest.mark.cluster, pytest.mark.obs]


@pytest.fixture(scope="module")
def workload(small_graph):
    return make_workload(
        small_graph,
        num_objects=60,
        duration=10.0,
        num_queries=10,
        k=6,
        update_frequency=1.0,
        seed=5,
    )


def traces_by_id(spans):
    """Group a tracer's span list into {trace_id: [spans]}."""
    groups = {}
    for s in spans:
        groups.setdefault(s.trace_id, []).append(s)
    return groups


def assert_well_formed(spans):
    """Every trace is a tree: exactly one root, every parent resolves
    in-trace, no negative durations, depths consistent."""
    assert spans, "expected at least one span"
    for trace_id, group in traces_by_id(spans).items():
        assert trace_id != 0, "span recorded without a trace id"
        ids = {s.span_id for s in group}
        assert len(ids) == len(group), "duplicate span ids in one trace"
        roots = [s for s in group if s.parent_span_id is None]
        assert len(roots) == 1, (
            f"trace {trace_id:032x} has {len(roots)} roots: "
            f"{[s.name for s in roots]}"
        )
        for s in group:
            assert s.end_s >= s.start_s, f"negative duration on {s.name}"
            if s.parent_span_id is not None:
                assert s.parent_span_id in ids, (
                    f"orphan span {s.name}: parent "
                    f"{s.parent_span_id:016x} not in its trace"
                )
                assert s.depth == s.parent.depth + 1


def exact(answers):
    return [[(e.obj, e.distance) for e in a.entries] for a in answers]


class TestSingleQueryTrace:
    def test_scatter_gather_is_one_trace_tree(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            report = ReplayReport(index_name=router.name)
            for obj, loc in workload.initial.items():
                router.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
            obs.tracer.clear()
            loc = next(iter(workload.initial.values()))
            # k > any single shard's population forces cross-shard fanout
            answer = router.query(Query(1.0, loc, k=50), report)

        assert len(answer.entries) == 50
        record = report.query_records[-1]
        assert record.fanout > 1
        spans = obs.tracer.spans
        # the whole scatter-gather shares ONE trace id
        assert len(traces_by_id(spans)) == 1
        assert_well_formed(spans)
        names = [s.name for s in spans]
        assert names[0] == "router.knn"
        assert "router.fanout" in names
        assert "merge" in names
        assert names.count("shard.probe") == record.fanout
        # the shard servers' own query spans joined the router's trace
        # through the encoded traceparent header
        assert names.count("query") == record.fanout
        # ladder-rung spans from inside the index nest beneath the probes
        assert "rung_gpu" in names
        # the record's trace id is the tree's
        assert record.trace_id == spans[0].trace_id_hex

    def test_probe_spans_carry_roles_and_shards(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            report = ReplayReport(index_name=router.name)
            for obj, loc in workload.initial.items():
                router.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
            obs.tracer.clear()
            loc = next(iter(workload.initial.values()))
            router.query(Query(1.0, loc, k=50), report)
        probes = [s for s in obs.tracer.spans if s.name == "shard.probe"]
        roles = [s.attrs["role"] for s in probes]
        assert roles[0] == "home"
        assert set(roles[1:]) <= {"fanout"}
        shards = {s.attrs["shard"] for s in probes}
        assert shards <= set(range(4)) and len(shards) == len(probes)

    def test_chrome_export_of_the_tree_is_loadable(self, small_graph, fast_config, workload, tmp_path):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            report = ReplayReport(index_name=router.name)
            for obj, loc in workload.initial.items():
                router.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
            obs.tracer.clear()
            loc = next(iter(workload.initial.values()))
            router.query(Query(1.0, loc, k=50), report)
        events = spans_to_chrome_events(obs.tracer.spans)
        doc = json.dumps({"traceEvents": events})
        parsed = json.loads(doc)["traceEvents"]
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in parsed)
        trace_ids = {e["args"]["trace_id"] for e in parsed}
        assert len(trace_ids) == 1


class TestTracingChangesNothing:
    def test_answers_byte_identical_with_tracing_on(self, small_graph, fast_config, workload):
        with ShardRouter(small_graph, fast_config, num_shards=4) as plain:
            _, baseline = plain.replay(workload, collect_answers=True)
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as traced:
            _, answers = traced.replay(workload, collect_answers=True)
        assert exact(answers) == exact(baseline)
        assert obs.tracer.spans, "tracing was supposed to be on"


class TestBatchedEpochTraces:
    def test_epoch_trees_are_well_formed(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=4,
            obs=obs,
            batch=BatchPolicy(4),
        ) as router:
            report, _ = router.replay(workload)
        assert report.n_batches > 0
        spans = obs.tracer.spans
        assert_well_formed(spans)
        roots = [s for s in spans if s.parent_span_id is None]
        assert {"router.epoch"} <= {s.name for s in roots}
        epochs = [s for s in spans if s.name == "router.epoch"]
        for epoch in epochs:
            children = [s for s in spans if s.parent is epoch]
            names = {s.name for s in children}
            assert "shard.batch" in names
            assert "router.fanout" in names

    def test_failover_mid_replay_keeps_trees_well_formed(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        plan = ShardFailurePlan.single(0, 5.0)
        with ShardRouter(
            small_graph,
            fast_config,
            num_shards=4,
            obs=obs,
            batch=BatchPolicy(4),
            failure_plan=plan,
        ) as router:
            router.replay(workload)
            promotions = sum(s.promotions for s in router.shards.values())
        assert promotions == 1
        spans = obs.tracer.spans
        assert_well_formed(spans)
        failover = [s for s in spans if s.name == "failover"]
        assert len(failover) == 1
        assert failover[0].attrs["shard"] == 0
        assert failover[0].attrs["mode"] in ("replica", "wal")
        # the failover left a flight-recorder dump behind
        reasons = [d.reason for d in obs.flight.dumps]
        assert "failover" in reasons


class TestObservabilityLinkage:
    def test_slowlog_entries_link_to_retained_traces(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing(flight_capacity=64)
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            router.replay(workload)
        entries = obs.slow_queries.as_dicts()
        assert entries, "replay recorded no slow-query entries"
        for entry in entries:
            assert entry["fanout"] >= 1
            assert entry["trace_id"] is not None
        # a slowlog trace id keys into the flight recorder's ring
        found = [
            obs.flight.find_trace(e["trace_id"])
            for e in entries
            if obs.flight.find_trace(e["trace_id"]) is not None
        ]
        assert found, "no slowlog trace id resolved in the flight recorder"
        assert found[0][0].name in ("router.knn", "router.epoch")

    def test_fanout_histogram_carries_exemplar_trace_ids(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            router.replay(workload)
        text = obs.registry.write_prometheus(exemplars=True)
        fanout_lines = [
            ln
            for ln in text.splitlines()
            if ln.startswith("repro_shard_fanout_bucket") and "# {" in ln
        ]
        assert fanout_lines, "fanout buckets carry no exemplars"
        assert 'trace_id="' in fanout_lines[0]

    def test_router_scores_slo_once_per_logical_query(self, small_graph, fast_config, workload):
        obs = Observability.with_tracing()
        with ShardRouter(
            small_graph, fast_config, num_shards=4, obs=obs
        ) as router:
            report, _ = router.replay(workload)
        snap = obs.registry.snapshot()["metrics"]
        requests = sum(
            v["value"]
            for v in snap["repro_slo_requests_total"]["values"]
        )
        # probes would inflate this beyond n_queries if the shard-internal
        # servers also published SLO samples
        assert requests == report.n_queries
        slo = report.slo()
        assert sum(c["requests"] for c in slo.values()) == report.n_queries
