"""Hot-shard detection: policy gates, median split, tracker hygiene."""

from __future__ import annotations

import pytest

from repro.cluster import (
    LoadTracker,
    RebalancePolicy,
    ShardMap,
    ShardRange,
    choose_split,
)
from repro.errors import ClusterError

pytestmark = pytest.mark.cluster


def loaded(pairs: list[tuple[int, int, int]]) -> LoadTracker:
    """Build a tracker from ``(shard, cell, count)`` triples."""
    tracker = LoadTracker()
    for sid, cell, count in pairs:
        for _ in range(count):
            tracker.record(sid, cell)
    return tracker


class TestPolicyValidation:
    @pytest.mark.parametrize("hot_share", [0.0, 1.0, -0.5, 1.5])
    def test_hot_share_must_be_strictly_inside_unit_interval(self, hot_share):
        with pytest.raises(ClusterError):
            RebalancePolicy(hot_share=hot_share)

    def test_other_fields_must_be_positive(self):
        with pytest.raises(ClusterError):
            RebalancePolicy(min_ops=0)
        with pytest.raises(ClusterError):
            RebalancePolicy(check_every=0)
        with pytest.raises(ClusterError):
            RebalancePolicy(max_shards=0)


class TestChooseSplit:
    def test_below_min_ops_does_nothing(self):
        m = ShardMap.balanced(16, 2)
        tracker = loaded([(0, 0, 10)])
        policy = RebalancePolicy(min_ops=64)
        assert choose_split(tracker, m, policy) is None

    def test_hot_share_is_a_strict_threshold(self):
        m = ShardMap.balanced(16, 2)
        # exactly half the traffic: NOT hot at hot_share=0.5
        tracker = loaded([(0, 0, 32), (1, 8, 32)])
        policy = RebalancePolicy(hot_share=0.5, min_ops=64)
        assert choose_split(tracker, m, policy) is None
        tracker.record(0, 0)  # one more op tips shard 0 over
        assert choose_split(tracker, m, policy) == (0, 1)

    def test_split_at_weighted_median(self):
        m = ShardMap.balanced(16, 2)  # shard 0 owns cells 0..7
        tracker = loaded([(0, 0, 10), (0, 1, 10), (0, 5, 50), (1, 8, 5)])
        policy = RebalancePolicy(hot_share=0.5, min_ops=32)
        sid, split = choose_split(tracker, m, policy)
        assert sid == 0
        # the prefix first reaches half the shard's 70 ops at cell 5, so
        # the cut lands just past it: [0..5] | [6..7]
        assert split == 6

    def test_split_clamped_inside_range(self):
        m = ShardMap.balanced(16, 2)
        # all load on the first cell: naive median would cut at lo, which
        # would empty the left half — must clamp to lo + 1
        tracker = loaded([(0, 0, 100)])
        policy = RebalancePolicy(hot_share=0.5, min_ops=32)
        assert choose_split(tracker, m, policy) == (0, 1)

    def test_max_shards_caps_growth(self):
        m = ShardMap.balanced(16, 2)
        tracker = loaded([(0, 0, 100)])
        policy = RebalancePolicy(hot_share=0.5, min_ops=32, max_shards=2)
        assert choose_split(tracker, m, policy) is None

    def test_single_cell_shard_never_splits(self):
        m = ShardMap(2, [ShardRange(0, 0, 0), ShardRange(1, 1, 1)])
        tracker = loaded([(0, 0, 100)])
        policy = RebalancePolicy(hot_share=0.5, min_ops=32)
        assert choose_split(tracker, m, policy) is None


class TestLoadTracker:
    def test_record_and_clear(self):
        tracker = loaded([(0, 3, 2), (1, 9, 1)])
        assert tracker.total == 3
        assert tracker.ops_by_shard == {0: 2, 1: 1}
        assert tracker.ops_by_cell == {3: 2, 9: 1}
        tracker.since_check = 5
        tracker.clear()
        assert tracker.total == 0
        assert tracker.since_check == 0
        assert not tracker.ops_by_shard and not tracker.ops_by_cell
