"""Replica shipping, promotion, and the derived shard-failure schedule."""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultPlan
from repro.cluster import Replica, ShardFailurePlan
from repro.core.ggrid import GGridIndex
from repro.core.graph_grid import GraphGrid
from repro.core.messages import Message
from repro.errors import ClusterError
from repro.persist.manager import DurabilityManager
from repro.persist.recovery import WAL_SUBDIR

pytestmark = pytest.mark.cluster


@pytest.fixture
def grid(small_graph, fast_config):
    return GraphGrid.build(small_graph, fast_config)


@pytest.fixture
def replica(small_graph, fast_config, grid):
    return Replica(0, small_graph, fast_config, grid, ship_every=4)


def msg(obj: int, edge: int = 0, offset: float = 0.1, t: float = 1.0) -> Message:
    return Message(obj, edge, offset, t)


class TestShipping:
    def test_buffers_until_ship_every(self, replica):
        for lsn in range(1, 4):
            replica.ship_ingest(lsn, msg(lsn, t=float(lsn)))
        assert replica.lag == 3
        assert replica.applied_lsn == 0
        assert replica.index.num_objects == 0

    def test_applies_at_ship_every(self, replica):
        for lsn in range(1, 5):
            replica.ship_ingest(lsn, msg(lsn, t=float(lsn)))
        assert replica.lag == 0
        assert replica.applied_lsn == 4
        assert replica.index.num_objects == 4
        assert replica.shipped == 4

    def test_remove_ships_too(self, replica):
        replica.ship_ingest(1, msg(7, t=1.0))
        replica.ship_remove(2, 7, 2.0)
        replica.apply_buffer()
        assert replica.index.num_objects == 0
        assert replica.applied_lsn == 2

    def test_out_of_order_lsn_rejected(self, replica):
        replica.ship_ingest(3, msg(1, t=1.0))
        with pytest.raises(ClusterError):
            replica.ship_ingest(3, msg(2, t=2.0))
        with pytest.raises(ClusterError):
            replica.ship_ingest(2, msg(2, t=2.0))

    def test_already_applied_lsn_rejected(self, replica):
        for lsn in range(1, 5):
            replica.ship_ingest(lsn, msg(lsn, t=float(lsn)))
        with pytest.raises(ClusterError):
            replica.ship_ingest(4, msg(9, t=9.0))

    def test_bad_ship_every_rejected(self, small_graph, fast_config, grid):
        with pytest.raises(ClusterError):
            Replica(0, small_graph, fast_config, grid, ship_every=0)


class TestPromotion:
    def test_promote_catches_up_from_wal(
        self, tmp_path, small_graph, fast_config, grid, replica
    ):
        """Promotion must drop the unapplied buffer and re-read the WAL
        tail, ending with the exact object set the primary logged."""
        primary = GGridIndex(small_graph, fast_config, grid=grid)
        manager = DurabilityManager(tmp_path)
        messages = [msg(obj, edge=obj % 5, t=float(obj)) for obj in range(1, 8)]
        for m in messages:
            primary.ingest(m)
            manager.log_ingest(m)
            replica.ship_ingest(manager.wal.last_lsn, m)
        manager.close()
        assert replica.lag == 3  # 7 shipped, 4 applied at ship_every=4

        index, caught_up = replica.promote(tmp_path / WAL_SUBDIR)
        assert caught_up == 3
        assert index is replica.index
        assert index.num_objects == primary.num_objects == 7
        assert replica.applied_lsn == manager.wal.last_lsn

    def test_promote_with_empty_buffer_replays_nothing_extra(
        self, tmp_path, small_graph, fast_config, grid
    ):
        replica = Replica(0, small_graph, fast_config, grid, ship_every=1)
        manager = DurabilityManager(tmp_path)
        for obj in range(1, 5):
            m = msg(obj, t=float(obj))
            manager.log_ingest(m)
            replica.ship_ingest(manager.wal.last_lsn, m)
        manager.close()
        assert replica.lag == 0
        _, caught_up = replica.promote(tmp_path / WAL_SUBDIR)
        assert caught_up == 0
        assert replica.index.num_objects == 4


class TestShardFailurePlan:
    def test_single(self):
        plan = ShardFailurePlan.single(2, 5.0)
        assert plan.failures == ((2, 5.0),)

    def test_invalid_failure_rejected(self):
        with pytest.raises(ClusterError):
            ShardFailurePlan(((-1, 5.0),))
        with pytest.raises(ClusterError):
            ShardFailurePlan(((0, -1.0),))

    def test_fault_free_plan_fails_nothing(self):
        plan = FaultPlan.from_profile("kernels", seed=3)
        clean = FaultPlan(seed=3)
        derived = ShardFailurePlan.from_fault_plan(clean, 4, 10.0)
        assert derived.failures == ()
        assert ShardFailurePlan.from_fault_plan(plan, 4, 10.0).failures != ()

    def test_derivation_is_deterministic_in_seed(self):
        plan = FaultPlan.from_profile("mixed", seed=7)
        a = ShardFailurePlan.from_fault_plan(plan, 4, 10.0)
        b = ShardFailurePlan.from_fault_plan(plan, 4, 10.0)
        assert a == b
        (sid, at), = a.failures
        assert 0 <= sid < 4
        assert 2.5 <= at <= 7.5  # middle half of the replay

    def test_derivation_validates_inputs(self):
        plan = FaultPlan.from_profile("mixed", seed=7)
        with pytest.raises(ClusterError):
            ShardFailurePlan.from_fault_plan(plan, 0, 10.0)
        with pytest.raises(ClusterError):
            ShardFailurePlan.from_fault_plan(plan, 4, 0.0)
