"""Paper-scale smoke suite (``-m scale``; excluded from the default run).

Drives the array-native data plane at the paper's order of magnitude —
a >=100k-vertex network carrying >=100k moving objects — through the
full ingest -> kNN -> update -> re-query cycle, with Dijkstra-oracle
spot checks on sampled queries and a generous wall-clock budget that
exists to catch accidental O(n^2) reintroductions, not to benchmark.

Run with::

    PYTHONPATH=src python -m pytest -m scale -q
"""

from __future__ import annotations

import random
import time

import pytest

from repro.config import GGridConfig
from repro.core import GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

from tests.conformance.oracle import oracle_knn
from tests.conformance.test_oracle_conformance import (
    assert_matches_oracle,
    entries_of,
)

pytestmark = pytest.mark.scale

#: paper-order scale floors the suite must exercise
MIN_VERTICES = 100_000
MIN_OBJECTS = 100_000

#: whole-suite wall budget (seconds); the measured cycle runs in well
#: under a minute — tripping this means a per-item hot path came back
WALL_BUDGET_S = 300.0

_ORACLE_QUERIES = 4
_UPDATE_ROUNDS = 2


@pytest.fixture(scope="module")
def scale_world():
    """Build the 100k/100k world once for the whole module."""
    started = time.perf_counter()
    graph = grid_road_network(317, 317, seed=7)
    assert graph.num_vertices >= MIN_VERTICES
    config = GGridConfig(
        delta_c=64, partitioner="geometric", sdist_backend="vectorized"
    )
    index = GGridIndex(graph, config)
    rng = random.Random(11)
    placements: dict[int, NetworkLocation] = {}
    for obj in range(MIN_OBJECTS):
        e = rng.randrange(graph.num_edges)
        loc = NetworkLocation(e, rng.random() * graph.edge(e).weight * 0.99)
        placements[obj] = loc
        index.ingest(Message(obj, loc.edge_id, loc.offset, t=1.0))
    return graph, index, placements, rng, started


def test_build_and_ingest_at_scale(scale_world):
    graph, index, placements, _, _ = scale_world
    assert index.num_objects == MIN_OBJECTS
    assert len(placements) == MIN_OBJECTS
    assert index.grid.num_cells >= graph.num_vertices // 64


def test_knn_matches_oracle_at_scale(scale_world):
    """Sampled queries answer byte-for-byte like the brute-force oracle
    (ties compared as id sets, the conformance convention)."""
    graph, index, placements, _, _ = scale_world
    qrng = random.Random(23)
    for _ in range(_ORACLE_QUERIES):
        e = qrng.randrange(graph.num_edges)
        loc = NetworkLocation(e, qrng.random() * graph.edge(e).weight * 0.99)
        k = qrng.choice((1, 5, 10))
        answer = index.knn(loc, k, t_now=2.0)
        assert len(answer.entries) == k
        assert_matches_oracle(
            entries_of(answer), oracle_knn(graph, placements, loc, k)
        )


def test_update_rounds_then_requery(scale_world):
    """Re-report a slice of the fleet (forcing cross-cell moves and
    re-cleaning), then verify a fresh query against the oracle."""
    graph, index, placements, rng, _ = scale_world
    t = 2.0
    for _ in range(_UPDATE_ROUNDS):
        t += 1.0
        for obj in rng.sample(range(MIN_OBJECTS), 10_000):
            e = rng.randrange(graph.num_edges)
            loc = NetworkLocation(e, rng.random() * graph.edge(e).weight * 0.99)
            placements[obj] = loc
            index.ingest(Message(obj, loc.edge_id, loc.offset, t=t))
    qrng = random.Random(41)
    for _ in range(2):
        e = qrng.randrange(graph.num_edges)
        loc = NetworkLocation(e, qrng.random() * graph.edge(e).weight * 0.99)
        answer = index.knn(loc, 10, t_now=t)
        assert len(answer.entries) == 10
        assert_matches_oracle(
            entries_of(answer), oracle_knn(graph, placements, loc, 10)
        )


def test_wall_clock_budget(scale_world):
    """Runs last: the whole module (build + ingest + queries + updates +
    oracle Dijkstras) must fit the budget."""
    *_, started = scale_world
    elapsed = time.perf_counter() - started
    assert elapsed < WALL_BUDGET_S, (
        f"scale suite took {elapsed:.1f}s (budget {WALL_BUDGET_S:.0f}s); "
        f"a per-item hot path likely regressed"
    )
