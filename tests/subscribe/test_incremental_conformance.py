"""Differential conformance for standing queries.

At every tick, each subscriber's incrementally maintained entries must
be **byte-identical** to a from-scratch re-query on a fresh index fed
the full message history, *and* match the pure-python Dijkstra oracle
(at the conformance suite's 9-decimal precision with tie-group
equality).  Randomized fleets, boundary-crossing churn (moves land on
arbitrary edges, so objects constantly change cells and shards),
``k > |objects|`` edge cases, and an aggressive-expiry variant where
lazy cleaning drops idle objects between ticks.
"""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.mobility.workload import random_locations
from repro.roadnet.generators import grid_road_network
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe import SubscriptionManager

from tests.conformance.oracle import oracle_knn

pytestmark = pytest.mark.subscribe

_GRAPHS = {
    "6x6": grid_road_network(6, 6, seed=33),
    "5x7": grid_road_network(5, 7, seed=11),
}
#: k sweep includes k > |objects| (12 objects below)
_SUB_KS = (1, 4, 20, 4, 1, 20)
_NUM_OBJECTS = 12


def _tie_groups(pairs):
    groups: dict[float, set[int]] = {}
    for obj, d in pairs:
        groups.setdefault(round(d, 9), set()).add(obj)
    return groups


def _scratch_report() -> ReplayReport:
    return ReplayReport(index_name="conformance", timing=TimingModel())


def _random_location(graph, rng: random.Random):
    edge = rng.randrange(graph.num_edges)
    from repro.roadnet.location import NetworkLocation

    return NetworkLocation(edge, rng.uniform(0.0, graph.edge(edge).weight))


def _drive(
    graph,
    config: GGridConfig,
    backend,
    manager: SubscriptionManager,
    seed: int,
    ticks: int,
    moves_per_tick: int = 3,
    idle_objects: frozenset[int] = frozenset(),
):
    """Feed a seeded churn stream, tick, and yield per-tick state.

    Yields ``(t, messages_so_far, model)`` after each tick —
    ``messages_so_far`` is the full history a from-scratch index must
    replay, ``model`` the latest location per live object (the oracle's
    world view).
    """
    rng = random.Random(seed)
    report = _scratch_report()
    messages: list[Message] = []
    model: dict[int, object] = {}
    for obj in range(_NUM_OBJECTS):
        loc = _random_location(graph, rng)
        msg = Message(obj, loc.edge_id, loc.offset, 0.0)
        backend.update(msg, report)
        messages.append(msg)
        model[obj] = loc
    for tick in range(1, ticks + 1):
        t = float(tick)
        movable = [o for o in range(_NUM_OBJECTS) if o not in idle_objects]
        # distinct objects per tick: the index contract requires
        # timestamps monotone per object, so two same-t moves of one
        # object would be an unresolvable tie, not churn
        n_moves = rng.randrange(0, moves_per_tick + 1)
        for obj in rng.sample(movable, min(n_moves, len(movable))):
            loc = _random_location(graph, rng)
            msg = Message(obj, loc.edge_id, loc.offset, t)
            backend.update(msg, report)
            messages.append(msg)
            model[obj] = loc
        manager.tick(t)
        yield t, messages, model


def _expired(model, messages, t, t_delta):
    """The oracle's view after lazy expiry: objects whose last report is
    older than ``t - t_delta`` are gone."""
    last = {}
    for m in messages:
        last[m.obj] = m.t
    return {
        obj: loc
        for obj, loc in model.items()
        if last[obj] >= t - t_delta
    }


@pytest.mark.parametrize("graph_name", sorted(_GRAPHS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_matches_scratch_and_oracle(graph_name, seed):
    graph = _GRAPHS[graph_name]
    config = GGridConfig(eta=3, delta_b=4)
    server = QueryServer(GGridIndex(graph, config))
    manager = SubscriptionManager(server)
    sub_locs = random_locations(graph, len(_SUB_KS), seed=seed + 50)
    for i, (loc, k) in enumerate(zip(sub_locs, _SUB_KS)):
        manager.register(i, loc, k)

    for t, messages, model in _drive(
        graph, config, server, manager, seed=seed, ticks=30
    ):
        fresh = GGridIndex(graph, config)
        for msg in messages:
            fresh.ingest(msg)
        answers = fresh.knn_batch(
            [(loc, k) for loc, k in zip(sub_locs, _SUB_KS)], t_now=t
        )
        for sub_id, answer in enumerate(answers):
            got = manager.entries_of(sub_id)
            want = [(e.obj, e.distance) for e in answer.entries]
            # same engine, same message history, same query time:
            # byte-identical, not just approximately equal
            assert got == want, f"t={t} sub={sub_id}"
            expect = oracle_knn(graph, model, sub_locs[sub_id], _SUB_KS[sub_id])
            assert [round(d, 9) for _, d in got] == [
                round(d, 9) for _, d in expect
            ], f"t={t} sub={sub_id}"
            assert _tie_groups(got) == _tie_groups(expect)


def test_incremental_survives_expiry():
    """With a tight ``t_delta``, idle objects expire between ticks with
    no message at all — the clock-only dirty rule must still keep every
    cached answer identical to a from-scratch query."""
    graph = _GRAPHS["6x6"]
    config = GGridConfig(eta=3, delta_b=4, t_delta=6.0)
    server = QueryServer(GGridIndex(graph, config))
    manager = SubscriptionManager(server)
    sub_locs = random_locations(graph, 4, seed=77)
    for i, loc in enumerate(sub_locs):
        manager.register(i, loc, 4)

    idle = frozenset({0, 1, 2})  # never report again after t=0 -> expire
    for t, messages, model in _drive(
        graph, config, server, manager, seed=5, ticks=20, idle_objects=idle
    ):
        fresh = GGridIndex(graph, config)
        for msg in messages:
            fresh.ingest(msg)
        answers = fresh.knn_batch([(loc, 4) for loc in sub_locs], t_now=t)
        live = _expired(model, messages, t, config.t_delta)
        for sub_id, answer in enumerate(answers):
            got = manager.entries_of(sub_id)
            want = [(e.obj, e.distance) for e in answer.entries]
            assert got == want, f"t={t} sub={sub_id}"
            expect = oracle_knn(graph, live, sub_locs[sub_id], 4)
            assert [round(d, 9) for _, d in got] == [
                round(d, 9) for _, d in expect
            ], f"t={t} sub={sub_id}"
    # the point of the scenario: expiry actually happened
    assert all(obj not in _expired(model, messages, t, config.t_delta)
               for obj in idle)


@pytest.mark.parametrize("seed", [0, 3])
def test_incremental_matches_scratch_on_cluster(seed):
    """Sharded backend: incremental entries match a fresh unsharded
    index at every tick (9 decimals + tie groups — restricted per-shard
    subgraphs admit last-ulp drift, the cluster suite's tolerance)."""
    from repro.cluster.router import ShardRouter

    graph = _GRAPHS["6x6"]
    config = GGridConfig(eta=3, delta_b=4)
    with ShardRouter(graph, config, num_shards=3) as router:
        manager = SubscriptionManager(router)
        sub_locs = random_locations(graph, len(_SUB_KS), seed=seed + 50)
        for i, (loc, k) in enumerate(zip(sub_locs, _SUB_KS)):
            manager.register(i, loc, k)
        for t, messages, model in _drive(
            graph, config, router, manager, seed=seed, ticks=15
        ):
            fresh = GGridIndex(graph, config)
            for msg in messages:
                fresh.ingest(msg)
            answers = fresh.knn_batch(
                [(loc, k) for loc, k in zip(sub_locs, _SUB_KS)], t_now=t
            )
            for sub_id, answer in enumerate(answers):
                got = manager.entries_of(sub_id)
                want = [(e.obj, e.distance) for e in answer.entries]
                assert [round(d, 9) for _, d in got] == [
                    round(d, 9) for _, d in want
                ], f"t={t} sub={sub_id}"
                assert _tie_groups(got) == _tie_groups(want)
