"""Golden-trace regression for the subscription delta stream.

A fixed-seed 200-tick scenario — seeded moves, occasional removals and
re-adds, a tight ``t_delta`` so lazy expiry fires mid-trace — renders
every tick's dirty set and delta events to a committed text log
(``golden_trace.txt``).  Any change to dirty-marking, tie-breaking, the
diff algorithm, or the engine's distance arithmetic shows up as a
readable unified diff instead of a silent behaviour shift.  To
regenerate after an *intentional* change::

    PYTHONPATH=src python tests/subscribe/test_golden_trace.py

then review the diff in git before committing it.
"""

from __future__ import annotations

import difflib
import random
from pathlib import Path

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.mobility.workload import random_locations
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe import SubscriptionManager

pytestmark = pytest.mark.subscribe

GOLDEN_PATH = Path(__file__).parent / "golden_trace.txt"

_NUM_OBJECTS = 10
_NUM_SUBS = 8
_K = 3
_TICKS = 200


def generate_trace() -> str:
    """The fixed-seed scenario, rendered tick by tick."""
    graph = grid_road_network(6, 6, seed=33)
    config = GGridConfig(eta=3, delta_b=4, t_delta=30.0)
    server = QueryServer(GGridIndex(graph, config))
    manager = SubscriptionManager(server)
    for i, loc in enumerate(random_locations(graph, _NUM_SUBS, seed=404)):
        manager.register(i, loc, _K)

    rng = random.Random(2025)
    report = ReplayReport(index_name="golden", timing=TimingModel())

    def random_loc() -> NetworkLocation:
        edge = rng.randrange(graph.num_edges)
        return NetworkLocation(edge, rng.uniform(0.0, graph.edge(edge).weight))

    live: set[int] = set()
    for obj in range(_NUM_OBJECTS):
        loc = random_loc()
        server.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
        live.add(obj)

    lines: list[str] = [
        f"# subscription golden trace: {_NUM_SUBS} subs k={_K}, "
        f"{_NUM_OBJECTS} objects, {_TICKS} ticks, t_delta=30",
    ]
    for tick in range(1, _TICKS + 1):
        t = float(tick)
        # distinct movers per tick (timestamps are monotone per object)
        movers = rng.sample(sorted(live), min(rng.randrange(0, 3), len(live)))
        for obj in movers:
            loc = random_loc()
            server.update(Message(obj, loc.edge_id, loc.offset, t), report)
        if live and rng.random() < 0.05:
            gone = rng.choice(sorted(live))
            server.remove_object(gone, t)
            live.discard(gone)
        elif len(live) < _NUM_OBJECTS and rng.random() < 0.5:
            back = min(set(range(_NUM_OBJECTS)) - live)
            loc = random_loc()
            server.update(Message(back, loc.edge_id, loc.offset, t), report)
            live.add(back)
        result = manager.tick(t)
        dirty = ",".join(str(s) for s in result.dirty) or "-"
        lines.append(
            f"tick {tick:03d} t={t:.1f} active={result.active} "
            f"dirty={dirty} events={len(result.deltas)}"
        )
        for event in result.deltas:
            detail = (
                f" rank={event.rank} d={event.distance:.9f}"
                if event.kind != "leave"
                else ""
            )
            lines.append(
                f"  sub {event.sub_id} {event.kind} obj={event.obj}{detail}"
            )
    return "\n".join(lines) + "\n"


def test_golden_trace_is_reproduced():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with "
        f"PYTHONPATH=src python {__file__}"
    )
    want = GOLDEN_PATH.read_text()
    got = generate_trace()
    if got != want:
        diff = "\n".join(
            difflib.unified_diff(
                want.splitlines(),
                got.splitlines(),
                fromfile="golden_trace.txt (committed)",
                tofile="generated (this code)",
                lineterm="",
                n=2,
            )
        )
        pytest.fail(
            f"subscription delta trace diverged from the golden log:\n{diff}"
        )


if __name__ == "__main__":
    GOLDEN_PATH.write_text(generate_trace())
    print(f"wrote {GOLDEN_PATH}")
