"""Unit coverage for the subscription layer's contracts and wiring.

Registration lifecycle errors, tick monotonicity, the expiry dirty
rule, delta-stream corruption detection, the ``repro_subs_*`` metric
families, and the front-door integration (the third request shape:
``sub``-class SLO scoring on the modelled busy horizon).
"""

from __future__ import annotations

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ConfigError, QueryError, SubscriptionError
from repro.mobility.workload import random_locations
from repro.obs import Observability
from repro.roadnet.generators import grid_road_network
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe import (
    DeltaEvent,
    SubscriptionManager,
    diff_topk,
    replay_deltas,
)

pytestmark = pytest.mark.subscribe

_GRAPH = grid_road_network(6, 6, seed=33)


def _server(config: GGridConfig | None = None, obs=None) -> QueryServer:
    return QueryServer(
        GGridIndex(_GRAPH, config or GGridConfig(eta=3, delta_b=4)), obs=obs
    )


def _report() -> ReplayReport:
    return ReplayReport(index_name="unit", timing=TimingModel())


def _feed(server: QueryServer, report: ReplayReport, n: int = 8) -> None:
    for obj, loc in enumerate(random_locations(_GRAPH, n, seed=9)):
        server.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)


# ----------------------------------------------------------------------
# registration and lifecycle
# ----------------------------------------------------------------------
def test_registration_contracts():
    manager = SubscriptionManager(_server())
    loc = random_locations(_GRAPH, 1, seed=1)[0]
    manager.register(1, loc, 3)
    with pytest.raises(SubscriptionError):
        manager.register(1, loc, 3)  # duplicate id
    with pytest.raises(SubscriptionError):
        manager.register(2, loc, 0)  # k < 1
    with pytest.raises(SubscriptionError):
        manager.cancel(99)
    with pytest.raises(SubscriptionError):
        manager.entries_of(99)
    manager.cancel(1)
    assert manager.subscriptions == {}


def test_backend_without_query_batch_rejected():
    with pytest.raises(SubscriptionError):
        SubscriptionManager(object())


def test_tick_must_be_monotone():
    server = _server()
    manager = SubscriptionManager(server)
    manager.tick(5.0)
    with pytest.raises(SubscriptionError):
        manager.tick(4.0)


def test_server_tick_requires_attached_manager():
    server = _server()
    with pytest.raises(QueryError):
        server.tick(1.0)
    manager = SubscriptionManager(server)
    report = _report()
    _feed(server, report)
    loc = random_locations(_GRAPH, 1, seed=2)[0]
    manager.register(0, loc, 2)
    # default t_now rides the index's latest ingested timestamp
    result = server.tick()
    assert result.refreshed == [0]
    assert len(manager.entries_of(0)) == 2


def test_force_all_refreshes_everything():
    server = _server()
    manager = SubscriptionManager(server)
    report = _report()
    _feed(server, report)
    for i, loc in enumerate(random_locations(_GRAPH, 3, seed=3)):
        manager.register(i, loc, 2)
    manager.tick(1.0)
    quiet = manager.tick(2.0)
    assert quiet.refreshed == []  # nothing moved, nothing dirty
    forced = manager.tick(3.0, force_all=True)
    assert forced.refreshed == [0, 1, 2]
    assert forced.deltas == []  # answers did not change


def test_removal_marker_and_remove_object_mark_members_dirty():
    server = _server()
    manager = SubscriptionManager(server)
    report = _report()
    _feed(server, report, n=4)
    loc = random_locations(_GRAPH, 1, seed=4)[0]
    manager.register(0, loc, 4)
    manager.tick(1.0)
    member = manager.entries_of(0)[0][0]
    server.remove_object(member, 2.0)
    assert 0 in manager.dirty_subscribers(2.0)
    result = manager.tick(2.0)
    assert member not in {obj for obj, _ in manager.entries_of(0)}
    assert any(
        e.kind == "leave" and e.obj == member for e in result.deltas
    )
    # a raw removal marker through observe() takes the same path
    manager.observe(Message(99, None, None, 3.0))
    assert (99, None, 3.0) in manager._buffer


def test_expiry_marks_dirty_without_any_message():
    """Lazy cleaning drops idle objects; the clock-only rule must catch
    the staleness a silent stream would otherwise hide."""
    server = _server(GGridConfig(eta=3, delta_b=4, t_delta=2.0))
    manager = SubscriptionManager(server)
    report = _report()
    _feed(server, report, n=4)
    loc = random_locations(_GRAPH, 1, seed=5)[0]
    manager.register(0, loc, 2)
    manager.tick(1.0)
    assert len(manager.entries_of(0)) == 2
    # no messages at all, but t=4 is past every member's t + t_delta
    assert 0 in manager.dirty_subscribers(4.0)
    manager.tick(4.0)
    assert manager.entries_of(0) == []  # everything expired, truthfully


def test_metrics_families_published():
    obs = Observability()
    server = _server(obs=obs)
    manager = SubscriptionManager(server, obs=obs)
    report = _report()
    _feed(server, report)
    loc = random_locations(_GRAPH, 1, seed=6)[0]
    manager.register(0, loc, 2)
    manager.tick(1.0)
    text = obs.registry.write_prometheus()
    for family in (
        "repro_subs_active",
        "repro_subs_dirty_fraction",
        "repro_subs_dirty_total",
        "repro_subs_ticks_total",
        "repro_subs_messages_observed_total",
        "repro_subs_delta_events_total",
        "repro_subs_refresh_seconds",
    ):
        assert family in text, family


# ----------------------------------------------------------------------
# delta stream
# ----------------------------------------------------------------------
def test_diff_topk_event_kinds():
    old = [(1, 1.0), (2, 2.0), (3, 3.0)]
    new = [(4, 0.5), (1, 1.0), (2, 2.5)]
    events = diff_topk(7, old, new, t=9.0)
    kinds = [(e.kind, e.obj) for e in events]
    assert kinds == [("leave", 3), ("enter", 4), ("rerank", 1), ("rerank", 2)]
    # obj 1 kept its distance but moved rank 0 -> 1: still a rerank
    assert replay_deltas(old, events) == sorted(
        new, key=lambda kv: (kv[1], kv[0])
    )


def test_replay_deltas_rejects_corrupt_stream():
    with pytest.raises(SubscriptionError):
        replay_deltas([], [DeltaEvent(0, "leave", 5, 1.0)])
    with pytest.raises(SubscriptionError):
        replay_deltas([], [DeltaEvent(0, "enter", 5, 1.0, distance=None)])
    with pytest.raises(SubscriptionError):
        replay_deltas([], [DeltaEvent(0, "warp", 5, 1.0, distance=1.0)])


# ----------------------------------------------------------------------
# front-door integration (the third request shape)
# ----------------------------------------------------------------------
def test_front_door_prices_subscription_ticks():
    from repro.obs.slo import CLASS_PAID
    from repro.serve.frontdoor import FrontDoor
    from repro.serve.tenancy import TenantPolicy

    server = _server()
    front = FrontDoor(
        server,
        [TenantPolicy("acme", CLASS_PAID, rate=100.0, burst=50.0)],
    )
    with pytest.raises(ConfigError):
        front.tick(1.0)  # nothing attached yet
    other = _server()
    stray = SubscriptionManager(other)
    with pytest.raises(ConfigError):
        front.attach_subscriptions(stray)  # wrong backend
    manager = SubscriptionManager(server)
    front.attach_subscriptions(manager)
    for obj, loc in enumerate(random_locations(_GRAPH, 6, seed=7)):
        front.update(Message(obj, loc.edge_id, loc.offset, 0.0))
    loc = random_locations(_GRAPH, 1, seed=8)[0]
    manager.register(0, loc, 3)
    before = front.busy_until
    result = front.tick(1.0)
    assert result.refreshed == [0]
    assert front.sub_ticks == 1 and front.sub_refreshes == 1
    assert front.busy_until > before  # refresh work joined the queue
    assert front.slo.report()["sub"]["requests"] == 1
