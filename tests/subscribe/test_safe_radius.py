"""Audit of the safe-radius pruning bound used for dirty-marking.

The subscription layer's whole savings claim rests on one invariant: a
message strictly outside a subscriber's safe radius — its cell's
network-distance lower bound strictly exceeds the cached ``d_k``, the
object is not a current member, and no member is near expiry — can
never change that subscriber's top-k.  This file pins both directions:

* **marking** — such a message does not put the subscriber in the dirty
  set (the pruning actually prunes);
* **soundness** — after any single message, every subscriber *not*
  marked dirty still holds exactly the answer a live query returns
  (skipping the refresh lost nothing).
"""

from __future__ import annotations

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.mobility.workload import random_locations
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe import SubscriptionManager

pytestmark = pytest.mark.subscribe

_GRAPH = grid_road_network(6, 6, seed=33)
_NUM_OBJECTS = 12
_K = 3


@pytest.mark.parametrize("seed", [0, 1])
def test_message_outside_radius_never_changes_topk(seed):
    config = GGridConfig(eta=3, delta_b=4)
    server = QueryServer(GGridIndex(_GRAPH, config))
    manager = SubscriptionManager(server)
    sub_locs = random_locations(_GRAPH, 8, seed=seed + 201)
    for i, loc in enumerate(sub_locs):
        manager.register(i, loc, _K)

    rng = random.Random(seed)
    report = ReplayReport(index_name="radius", timing=TimingModel())

    def random_loc() -> NetworkLocation:
        edge = rng.randrange(_GRAPH.num_edges)
        return NetworkLocation(edge, rng.uniform(0.0, _GRAPH.edge(edge).weight))

    for obj in range(_NUM_OBJECTS):
        loc = random_loc()
        server.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
    manager.tick(1.0)

    t = 1.0
    pruned_checked = 0
    for step in range(200):
        t += 0.01  # far below t_delta: the expiry rule stays quiet
        obj = rng.randrange(_NUM_OBJECTS)
        loc = random_loc()
        cell = manager.grid.cell_of_edge(loc.edge_id)
        # capture the pre-message pruning facts per subscriber
        outside: set[int] = set()
        for sub_id, sub in manager.subscriptions.items():
            lb = manager.bound.lower_bound_to_cells(
                sub.location, range(cell, cell + 1)
            )
            if obj not in sub.objects() and lb > sub.safe_radius:
                outside.add(sub_id)
        server.update(Message(obj, loc.edge_id, loc.offset, t), report)
        dirty = manager.dirty_subscribers(t)
        # marking direction: strictly-outside messages do not mark
        assert not (outside & dirty), (
            f"step {step}: message outside the safe radius marked "
            f"{sorted(outside & dirty)} dirty"
        )
        pruned_checked += len(outside)
        # soundness direction: every unmarked subscriber's cached answer
        # is still the live answer — skipping its refresh loses nothing
        for sub_id, sub in manager.subscriptions.items():
            if sub_id in dirty:
                continue
            live = server.index.knn(sub.location, sub.k, t_now=t)
            assert [(e.obj, e.distance) for e in live.entries] == sub.entries, (
                f"step {step}: unmarked subscriber {sub_id} went stale"
            )
        manager.tick(t)
    # the property must not pass vacuously: the bound actually pruned
    assert pruned_checked > 0
