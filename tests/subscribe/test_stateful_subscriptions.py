"""Stateful soundness for the subscription layer.

Hypothesis drives arbitrary interleavings of object ingest / move /
removal, subscription register / cancel, and refresh ticks — under no
faults and under the ``mixed`` chaos profile.  Two properties at every
tick:

* **dirty-set soundness** — no stale answer survives: *every* active
  subscription (refreshed or not) matches the brute-force oracle after
  the tick;
* **delta losslessness** — each subscriber's emitted events replay over
  its previous entries to exactly the new entries.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.chaos import FaultPlan
from repro.chaos.hub import configure_chaos
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe import SubscriptionManager, replay_deltas

from tests.conformance.oracle import oracle_knn

pytestmark = pytest.mark.subscribe

_GRAPH = grid_road_network(6, 6, seed=33)
_OBJECTS = range(10)


def _tie_groups(pairs):
    groups: dict[float, set[int]] = {}
    for obj, d in pairs:
        groups.setdefault(round(d, 9), set()).add(obj)
    return groups


class SubscriptionMachine(RuleBasedStateMachine):
    """One served index + manager under optional chaos, plus the model."""

    @initialize(profile=st.sampled_from([None, "mixed"]))
    def setup(self, profile: str | None) -> None:
        plan = FaultPlan.from_profile(profile, seed=17) if profile else None
        self._previous_plan = configure_chaos(plan)
        self.server = QueryServer(
            GGridIndex(_GRAPH, GGridConfig(eta=3, delta_b=4))
        )
        self.manager = SubscriptionManager(self.server)
        self.report = ReplayReport(index_name="stateful", timing=TimingModel())
        self.model: dict[int, NetworkLocation] = {}
        #: entries snapshot at the last tick, per sub (for delta replay)
        self.prev: dict[int, list[tuple[int, float]]] = {}
        self.next_sub = 0
        self.clock = 0.0
        self.rng = random.Random(7)

    def teardown(self) -> None:
        if hasattr(self, "_previous_plan"):
            configure_chaos(self._previous_plan)

    def _tick_clock(self) -> float:
        self.clock += 1.0
        return self.clock

    def _location(self, edge: int, frac: float) -> NetworkLocation:
        return NetworkLocation(edge, frac * _GRAPH.edge(edge).weight)

    # ------------------------------------------------------------------
    # rules: the moving fleet
    # ------------------------------------------------------------------
    @rule(
        obj=st.sampled_from(list(_OBJECTS)),
        edge=st.integers(0, _GRAPH.num_edges - 1),
        frac=st.floats(0.0, 1.0),
    )
    def ingest(self, obj: int, edge: int, frac: float) -> None:
        t = self._tick_clock()
        loc = self._location(edge, frac)
        self.server.update(
            Message(obj, loc.edge_id, loc.offset, t), self.report
        )
        self.model[obj] = loc

    @precondition(lambda self: self.model)
    @rule()
    def remove(self) -> None:
        obj = self.rng.choice(sorted(self.model))
        self.server.remove_object(obj, self._tick_clock())
        del self.model[obj]

    # ------------------------------------------------------------------
    # rules: the subscriber fleet
    # ------------------------------------------------------------------
    @rule(
        edge=st.integers(0, _GRAPH.num_edges - 1),
        frac=st.floats(0.0, 1.0),
        k=st.integers(1, 12),
    )
    def register(self, edge: int, frac: float, k: int) -> None:
        sub_id = self.next_sub
        self.next_sub += 1
        self.manager.register(sub_id, self._location(edge, frac), k)
        self.prev[sub_id] = []

    @precondition(lambda self: self.manager.subscriptions)
    @rule()
    def cancel(self) -> None:
        sub_id = self.rng.choice(sorted(self.manager.subscriptions))
        self.manager.cancel(sub_id)
        del self.prev[sub_id]

    # ------------------------------------------------------------------
    # the checked rule: tick
    # ------------------------------------------------------------------
    @precondition(lambda self: self.manager.subscriptions)
    @rule()
    def tick(self) -> None:
        t = self._tick_clock()
        result = self.manager.tick(t)
        for sub_id, sub in self.manager.subscriptions.items():
            got = list(sub.entries)
            # dirty-set soundness: refreshed or not, the cached answer
            # is the true answer at tick time
            want = oracle_knn(_GRAPH, self.model, sub.location, sub.k)
            assert [round(d, 9) for _, d in got] == [
                round(d, 9) for _, d in want
            ], f"stale answer survived the tick (sub {sub_id})"
            assert _tie_groups(got) == _tie_groups(want)
            # delta losslessness: events fold to exactly the new entries
            replayed = replay_deltas(
                self.prev[sub_id], result.deltas_for(sub_id)
            )
            assert replayed == got, f"delta replay diverged (sub {sub_id})"
            self.prev[sub_id] = got

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def no_leaked_locks(self) -> None:
        if not hasattr(self, "server"):
            return
        assert not any(
            m.locked for m in self.server.index.lists.values()
        )

    @invariant()
    def object_table_matches_model(self) -> None:
        if not hasattr(self, "server"):
            return
        assert set(self.server.index.object_table.objects()) == set(self.model)


SubscriptionMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
TestSubscriptionSoundness = SubscriptionMachine.TestCase
