"""The graceful-degradation acceptance proof (DESIGN.md §14).

2x diurnal overload, optionally under the mixed chaos profile, through
the sharded front door: the paid tier's SLO holds, shed queries are only
ever rejected, admitted answers are byte-identical to a fresh fault-free
single-server oracle, and the whole replay is deterministic.
"""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultPlan
from repro.obs.slo import CLASS_FREE, CLASS_PAID
from repro.serve.harness import (
    OVERLOAD_FACTOR,
    OVERLOAD_PROFILE,
    run_overload_proof,
)

pytestmark = [pytest.mark.serve, pytest.mark.conformance]


@pytest.fixture(scope="module")
def overload_report():
    """One canonical 2x-overload replay, no chaos (module-cached)."""
    return run_overload_proof()


@pytest.fixture(scope="module")
def chaos_report():
    """The same replay under the mixed fault profile (module-cached)."""
    return run_overload_proof(
        FaultPlan.from_profile(OVERLOAD_PROFILE, seed=7)
    )


def test_overload_engages_shedding_but_never_wrongness(overload_report):
    report = overload_report
    assert report.overload == OVERLOAD_FACTOR
    assert report.summary["max_level"] >= 1  # overload control engaged
    assert report.shed_total() > 0
    # a shed query is rejected, never answered wrongly
    assert report.answers_match
    assert report.paid_slo_met


def test_shedding_protects_the_paid_tier(overload_report):
    summary = overload_report.summary
    shed_by_class: dict[str, int] = {}
    for key, count in summary["shed"].items():
        cls = key.split(":")[1]
        shed_by_class[cls] = shed_by_class.get(cls, 0) + count
    # the free tier absorbs the overload; paid admissions dominate
    assert shed_by_class.get(CLASS_FREE, 0) > 0
    assert summary["admitted"][CLASS_PAID] > 0
    paid = summary["slo"][CLASS_PAID]
    assert paid["met"]
    assert paid["attainment"] >= paid["target"]


def test_chaos_under_overload_degrades_gracefully(chaos_report):
    report = chaos_report
    # faults really were injected and the ladder really was exercised
    assert sum(report.faults_injected.values()) > 0
    assert report.breaker_trips > 0
    # ...and the contract still holds: exact admitted answers, paid SLO
    assert report.answers_match
    assert report.paid_slo_met
    assert report.shed_total() > 0


def test_overload_replay_is_deterministic(chaos_report):
    again = run_overload_proof(
        FaultPlan.from_profile(OVERLOAD_PROFILE, seed=7)
    )
    assert again.as_dict() == chaos_report.as_dict()


def test_closed_loop_driving_masks_the_overload(overload_report):
    """The contrast justifying the open-loop generator: a closed-loop
    driver self-throttles, so the same 2x demand sheds (almost) nothing."""
    closed = run_overload_proof(closed_loop=True)
    assert closed.suppressed > 0
    assert closed.shed_total() < overload_report.shed_total() / 10
    assert closed.answers_match
