"""The overload state machine: strict shed order with hysteresis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.shedding import (
    LEVEL_BROWNOUT,
    LEVEL_NORMAL,
    LEVEL_SHED_FREE,
    LEVEL_SHRINK,
    LEVELS,
    LoadShedder,
    ShedPolicy,
    level_name,
)

pytestmark = pytest.mark.serve


class TestShedPolicy:
    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ConfigError, match="positive"):
            ShedPolicy(shed_free_backlog_s=0.0)

    def test_rejects_decreasing_backlog_thresholds(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            ShedPolicy(shed_free_backlog_s=2.0, shrink_backlog_s=1.0)

    def test_rejects_decreasing_burn_thresholds(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            ShedPolicy(shrink_burn=5.0, brownout_burn=2.0)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_rejects_bad_recover_fraction(self, fraction):
        with pytest.raises(ConfigError, match="recover_fraction"):
            ShedPolicy(recover_fraction=fraction)

    def test_thresholds_by_level(self):
        policy = ShedPolicy()
        assert policy.backlog_threshold(LEVEL_SHED_FREE) == 0.25
        assert policy.backlog_threshold(LEVEL_BROWNOUT) == 4.0
        assert policy.burn_threshold(LEVEL_SHRINK) == 2.0


class TestLoadShedder:
    def test_starts_normal(self):
        shedder = LoadShedder()
        assert shedder.level == LEVEL_NORMAL
        assert not shedder.shedding_free
        assert shedder.transitions == {}

    def test_escalation_can_jump_levels(self):
        shedder = LoadShedder()
        assert shedder.assess(5.0, 0.0) == LEVEL_BROWNOUT
        assert shedder.transitions == {(LEVEL_NORMAL, LEVEL_BROWNOUT): 1}

    def test_burn_rate_alone_escalates(self):
        shedder = LoadShedder()
        # default burn thresholds 1.0 / 2.0 / 3.5
        assert shedder.assess(0.0, 2.5) == LEVEL_SHRINK

    def test_deescalation_is_one_level_per_assess(self):
        shedder = LoadShedder()
        shedder.assess(5.0, 0.0)
        levels = [shedder.assess(0.0, 0.0) for _ in range(4)]
        assert levels == [
            LEVEL_SHRINK,
            LEVEL_SHED_FREE,
            LEVEL_NORMAL,
            LEVEL_NORMAL,
        ]

    def test_hysteresis_holds_a_level_between_thresholds(self):
        shedder = LoadShedder()  # shrink entry 1.0, recovery 0.5
        shedder.assess(5.0, 0.0)
        shedder.assess(0.0, 0.0)  # brownout -> shrink
        # a backlog between shrink's recovery (0.5) and entry (1.0)
        # thresholds holds the level instead of flapping
        assert shedder.assess(0.6, 0.0) == LEVEL_SHRINK
        assert shedder.assess(0.6, 0.0) == LEVEL_SHRINK
        # below recovery it finally steps down
        assert shedder.assess(0.3, 0.0) == LEVEL_SHED_FREE

    def test_transitions_ledger_counts_each_edge(self):
        shedder = LoadShedder()
        shedder.assess(5.0, 0.0)
        for _ in range(3):
            shedder.assess(0.0, 0.0)
        assert shedder.transitions == {
            (LEVEL_NORMAL, LEVEL_BROWNOUT): 1,
            (LEVEL_BROWNOUT, LEVEL_SHRINK): 1,
            (LEVEL_SHRINK, LEVEL_SHED_FREE): 1,
            (LEVEL_SHED_FREE, LEVEL_NORMAL): 1,
        }

    def test_properties_follow_the_strict_order(self):
        shedder = LoadShedder()
        shedder.level = LEVEL_SHED_FREE
        assert shedder.shedding_free
        assert not shedder.shrinking_batches
        shedder.level = LEVEL_SHRINK
        assert shedder.shedding_free and shedder.shrinking_batches
        assert not shedder.browned_out
        shedder.level = LEVEL_BROWNOUT
        assert shedder.browned_out

    @pytest.mark.parametrize(
        "batch,shrunk", [(8, 4), (7, 4), (2, 1), (1, 1)]
    )
    def test_effective_batch_size_halves_under_shrink(self, batch, shrunk):
        shedder = LoadShedder()
        assert shedder.effective_batch_size(batch) == batch
        shedder.level = LEVEL_SHRINK
        assert shedder.effective_batch_size(batch) == shrunk

    def test_level_names(self):
        assert [level_name(i) for i in range(4)] == list(LEVELS)
