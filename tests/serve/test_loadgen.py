"""Load-generator determinism: fixed seeds pin the arrival schedule."""

from __future__ import annotations

import pytest

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.workload import Query
from repro.obs.slo import CLASS_FREE, CLASS_PAID
from repro.roadnet.location import NetworkLocation
from repro.serve.loadgen import (
    Arrival,
    ArrivalProfile,
    LoadGenerator,
    ServeWorkload,
    TenantSpec,
    diurnal_profile,
    make_serve_workload,
)
from repro.serve.tenancy import TenantPolicy

pytestmark = pytest.mark.serve


def roster() -> list[TenantSpec]:
    return [
        TenantSpec(TenantPolicy("acme", CLASS_PAID), rate=2.0),
        TenantSpec(TenantPolicy("hobby", CLASS_FREE), rate=1.0),
    ]


#: The pinned golden prefix for ``seed=42`` over ``diurnal_profile(20.0)``
#: on the session ``small_graph`` — ``(t, tenant, edge_id, offset)``,
#: floats rounded to 9 decimals.  A change here means the generator's
#: sampling changed and every recorded serve baseline is invalidated.
GOLDEN_PREFIX = [
    (0.86303758, "acme", 91, 0.50915285),
    (2.397633626, "hobby", 4, 1.050031141),
    (2.728814678, "acme", 101, 0.561565287),
    (2.751760582, "acme", 22, 0.366242644),
    (4.377704048, "acme", 43, 0.425028037),
    (4.979074522, "acme", 27, 0.357040661),
]
GOLDEN_TOTAL = 121


def test_fixed_seed_pins_the_golden_schedule(small_graph):
    gen = LoadGenerator(
        small_graph, roster(), diurnal_profile(20.0), seed=42
    )
    arrivals = gen.arrivals()
    assert len(arrivals) == GOLDEN_TOTAL
    got = [
        (
            round(a.t, 9),
            a.tenant,
            a.query.location.edge_id,
            round(a.query.location.offset, 9),
        )
        for a in arrivals[: len(GOLDEN_PREFIX)]
    ]
    assert got == GOLDEN_PREFIX


def test_identical_seeds_produce_identical_schedules(small_graph):
    profile = diurnal_profile(20.0)
    a = LoadGenerator(small_graph, roster(), profile, seed=42).arrivals()
    b = LoadGenerator(small_graph, roster(), profile, seed=42).arrivals()
    assert a == b


def test_different_seeds_differ(small_graph):
    profile = diurnal_profile(20.0)
    a = LoadGenerator(small_graph, roster(), profile, seed=42).arrivals()
    b = LoadGenerator(small_graph, roster(), profile, seed=43).arrivals()
    assert a != b


def test_tenant_streams_are_independent_of_roster_growth(small_graph):
    """Adding a tenant must not perturb existing tenants' schedules."""
    profile = diurnal_profile(20.0)
    base = LoadGenerator(small_graph, roster(), profile, seed=42).arrivals()
    grown_roster = roster() + [
        TenantSpec(TenantPolicy("newbie", CLASS_FREE), rate=1.0)
    ]
    grown = LoadGenerator(
        small_graph, grown_roster, profile, seed=42
    ).arrivals()
    assert [a for a in grown if a.tenant != "newbie"] == base


def test_overload_scales_the_offered_load(small_graph):
    gen = LoadGenerator(small_graph, roster(), diurnal_profile(20.0), seed=1)
    n1 = len(gen.arrivals(overload=1.0))
    n2 = len(gen.arrivals(overload=2.0))
    assert n2 > 1.5 * n1
    with pytest.raises(ConfigError):
        gen.arrivals(overload=0.0)


def test_schedule_is_time_ordered_within_duration(small_graph):
    profile = diurnal_profile(20.0)
    arrivals = LoadGenerator(small_graph, roster(), profile, seed=3).arrivals()
    times = [a.t for a in arrivals]
    assert times == sorted(times)
    assert all(0.0 < t < profile.duration for t in times)
    assert all(a.query.t == a.t for a in arrivals)


def test_hotspot_fraction_skews_locations(small_graph):
    profile = ArrivalProfile(
        phases=((30.0, 1.0),), hotspot_fraction=1.0, num_hotspots=2
    )
    gen = LoadGenerator(small_graph, roster(), profile, seed=5)
    arrivals = gen.arrivals()
    # every location is drawn from the (small) hotspot pool
    edges = {a.query.location.edge_id for a in arrivals}
    assert len(edges) < small_graph.num_edges / 4


def test_generator_validation(small_graph):
    with pytest.raises(ConfigError, match="at least one tenant"):
        LoadGenerator(small_graph, [])
    dup = [roster()[0], roster()[0]]
    with pytest.raises(ConfigError, match="duplicate"):
        LoadGenerator(small_graph, dup)


class TestArrivalProfile:
    def test_phase_validation(self):
        with pytest.raises(ConfigError, match="strictly increase"):
            ArrivalProfile(phases=((10.0, 1.0), (5.0, 2.0)))
        with pytest.raises(ConfigError, match="positive"):
            ArrivalProfile(phases=((10.0, 0.0),))
        with pytest.raises(ConfigError, match="at least one phase"):
            ArrivalProfile(phases=())
        with pytest.raises(ConfigError, match="hotspot_fraction"):
            ArrivalProfile(hotspot_fraction=1.5)

    def test_multiplier_at_is_piecewise_constant(self):
        profile = ArrivalProfile(phases=((5.0, 0.5), (10.0, 2.0)))
        assert profile.multiplier_at(0.0) == 0.5
        assert profile.multiplier_at(4.999) == 0.5
        assert profile.multiplier_at(5.0) == 2.0
        assert profile.multiplier_at(999.0) == 2.0  # clamps to the last
        assert profile.duration == 10.0
        assert profile.peak_multiplier == 2.0

    def test_diurnal_shape(self):
        profile = diurnal_profile(40.0, peak=3.0, quiet=0.3)
        assert profile.duration == 40.0
        assert profile.peak_multiplier == 3.0
        assert profile.multiplier_at(0.0) == 0.3  # night
        assert profile.multiplier_at(15.0) == 3.0  # morning rush
        assert profile.multiplier_at(25.0) == 1.0  # steady day
        assert profile.multiplier_at(35.0) == 3.0  # evening rush
        with pytest.raises(ConfigError):
            diurnal_profile(0.0)


def test_tenant_spec_validation():
    with pytest.raises(ConfigError, match="rate"):
        TenantSpec(TenantPolicy("acme"), rate=0.0)
    with pytest.raises(ConfigError, match="k"):
        TenantSpec(TenantPolicy("acme"), k=0)


def test_workload_events_take_updates_first_on_ties():
    loc = NetworkLocation(0, 0.5)
    workload = ServeWorkload(
        initial={},
        updates=[Message(0, 0, 0.1, 1.0)],
        arrivals=[Arrival(1.0, "acme", Query(1.0, loc, 4))],
    )
    kinds = [kind for kind, _ in workload.events()]
    assert kinds == ["update", "arrival"]
    assert workload.num_updates == 1
    assert workload.num_arrivals == 1


def test_make_serve_workload_is_deterministic(small_graph):
    a = make_serve_workload(small_graph, roster(), num_objects=16,
                            profile=diurnal_profile(10.0), seed=7)
    b = make_serve_workload(small_graph, roster(), num_objects=16,
                            profile=diurnal_profile(10.0), seed=7)
    assert a.initial == b.initial
    assert a.updates == b.updates
    assert a.arrivals == b.arrivals
    assert a.num_arrivals > 0 and a.num_updates > 0
