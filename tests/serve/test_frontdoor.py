"""The front door over a single server: admission, lanes, epochs, asyncio."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ConfigError, QueryError, ShedError
from repro.mobility.workload import Query, random_locations
from repro.obs import Observability
from repro.obs.slo import CLASS_FREE, CLASS_PAID
from repro.serve.deadline import LatencyEstimator
from repro.serve.frontdoor import FrontDoor
from repro.serve.shedding import LEVEL_BROWNOUT, SHED_BROWNOUT, SHED_DEADLINE
from repro.serve.tenancy import SHED_QUOTA, TenantPolicy
from repro.server.server import QueryServer

pytestmark = pytest.mark.serve


def roster() -> list[TenantPolicy]:
    return [
        TenantPolicy("acme", CLASS_PAID, rate=100.0, burst=50.0,
                     deadline_s=100.0),
        TenantPolicy("hobby", CLASS_FREE, rate=100.0, burst=50.0,
                     deadline_s=100.0),
    ]


@pytest.fixture
def serving(small_graph, fast_config):
    """A front door over a fresh single server, with 8 objects loaded."""
    index = GGridIndex(small_graph, fast_config)
    server = QueryServer(index, obs=None)
    front = FrontDoor(server, roster(), batch_size=4, obs=None)
    for obj, loc in enumerate(random_locations(small_graph, 8, seed=3)):
        front.update(Message(obj, loc.edge_id, loc.offset, 0.0))
    return front, index


def query_at(graph, t: float, k: int = 4, seed: int = 11) -> Query:
    return Query(t, random_locations(graph, 1, seed=seed)[0], k)


def test_backend_must_have_the_server_shape():
    with pytest.raises(ConfigError, match="must provide update"):
        FrontDoor(object(), roster(), obs=None)

    class Half:
        def update(self, message, report):
            pass

    with pytest.raises(ConfigError, match="query_batch"):
        FrontDoor(Half(), roster(), obs=None)


def test_batch_size_must_be_positive(small_graph, fast_config):
    server = QueryServer(GGridIndex(small_graph, fast_config), obs=None)
    with pytest.raises(ConfigError, match="batch_size"):
        FrontDoor(server, roster(), batch_size=0, obs=None)


def test_ticket_pends_until_flush(serving, small_graph):
    front, _ = serving
    ticket = front.submit_nowait("acme", query_at(small_graph, 1.0))
    assert not ticket.done
    with pytest.raises(QueryError, match="pending"):
        ticket.result()
    front.flush()
    assert ticket.done
    assert ticket.result().objects()
    assert ticket.completed_t is not None


def test_admitted_answers_match_a_direct_index(
    serving, small_graph, fast_config
):
    front, _ = serving
    oracle = GGridIndex(small_graph, fast_config)
    for obj, loc in enumerate(random_locations(small_graph, 8, seed=3)):
        oracle.ingest(Message(obj, loc.edge_id, loc.offset, 0.0))
    q = query_at(small_graph, 1.0)
    ticket = front.submit_nowait("acme", q)
    front.flush()
    want = oracle.knn(q.location, q.k, t_now=q.t)
    assert ticket.result().distances() == pytest.approx(want.distances())
    assert ticket.result().objects() == want.objects()


def test_epoch_fills_from_the_paid_lane_first(serving, small_graph):
    front, _ = serving
    free_q = query_at(small_graph, 1.0, seed=21)
    paid_q = query_at(small_graph, 1.1, seed=22)
    front.submit_nowait("hobby", free_q)
    front.submit_nowait("acme", paid_q)
    front.flush()
    queries = [e[1] for e in front.execution_log if e[0] == "query"]
    assert queries == [paid_q, free_q]


def test_flush_triggers_at_the_epoch_size(serving, small_graph):
    front, _ = serving
    tickets = [
        front.submit_nowait("acme", query_at(small_graph, 1.0 + i, seed=i))
        for i in range(front.batch_size)
    ]
    # the submit that filled the epoch flushed it inline
    assert all(t.done for t in tickets)
    assert front.epochs == 1


def test_update_closes_the_open_epoch(serving, small_graph):
    front, _ = serving
    ticket = front.submit_nowait("acme", query_at(small_graph, 1.0))
    front.update(Message(0, 0, 0.0, 2.0))
    assert ticket.done
    # the log keeps execution order: the query epoch ran first
    kinds = [e[0] for e in front.execution_log[-2:]]
    assert kinds == ["query", "update"]


def test_quota_shed_is_counted(serving, small_graph):
    front, _ = serving
    front.admission.tenants["acme"] = TenantPolicy(
        "acme", CLASS_PAID, rate=1.0, burst=1, deadline_s=100.0
    )
    front.admission._buckets["acme"] = front.admission.tenants[
        "acme"
    ].make_bucket()
    front.submit_nowait("acme", query_at(small_graph, 1.0))
    with pytest.raises(ShedError) as exc:
        front.submit_nowait("acme", query_at(small_graph, 1.0, seed=12))
    assert exc.value.reason == SHED_QUOTA
    assert front.shed[(SHED_QUOTA, CLASS_PAID)] == 1
    assert front.admitted[CLASS_PAID] == 1


def test_deadline_shed_at_admission(serving, small_graph, fast_config):
    index = GGridIndex(small_graph, fast_config)
    server = QueryServer(index, obs=None)
    tight = [
        TenantPolicy("acme", CLASS_PAID, rate=100.0, burst=50.0,
                     deadline_s=0.01),
    ]
    front = FrontDoor(
        server,
        tight,
        estimator=LatencyEstimator(initial_s=1.0),
        obs=None,
    )
    with pytest.raises(ShedError) as exc:
        front.submit_nowait("acme", query_at(small_graph, 1.0))
    assert exc.value.reason == SHED_DEADLINE
    assert front.shed[(SHED_DEADLINE, CLASS_PAID)] == 1


def test_overload_sheds_the_free_class_not_paid(serving, small_graph):
    front, _ = serving
    front.busy_until = 50.0  # backlog far past every threshold
    with pytest.raises(ShedError) as exc:
        front.submit_nowait("hobby", query_at(small_graph, 1.0))
    assert exc.value.reason == SHED_BROWNOUT
    assert exc.value.tenant_class == CLASS_FREE
    # paid rides through (its 100s deadline covers the backlog)
    ticket = front.submit_nowait("acme", query_at(small_graph, 1.0, seed=12))
    assert ticket is not None
    assert front.max_level == LEVEL_BROWNOUT


def test_brownout_reaches_a_single_server_index(serving, small_graph):
    front, index = serving
    front.busy_until = 50.0
    with pytest.raises(ShedError):
        front.submit_nowait("hobby", query_at(small_graph, 1.0))
    assert index.brownout
    # calm assessments walk the ladder back down one level at a time
    # (the first two still shed the free tier) and clear the brownout
    front.busy_until = 0.0
    for i in range(3):
        try:
            front.submit_nowait(
                "hobby", query_at(small_graph, 2.0 + i, seed=i)
            )
        except ShedError:
            pass
    assert not index.brownout


def test_brownout_prefers_the_backends_set_brownout(small_graph):
    calls: list[bool] = []

    class FakeRouter:
        def update(self, message, report):
            pass

        def query_batch(self, queries, report, trace_parent=None):
            return []

        def set_brownout(self, active):
            calls.append(active)

    front = FrontDoor(FakeRouter(), roster(), obs=None)
    front.busy_until = 50.0
    front.submit_nowait("acme", query_at(small_graph, 1.0))
    assert calls == [True]


def test_serve_metrics_families(small_graph, fast_config):
    obs = Observability()
    index = GGridIndex(small_graph, fast_config)
    server = QueryServer(index, obs=obs)
    front = FrontDoor(server, roster(), batch_size=2, obs=obs)
    for obj, loc in enumerate(random_locations(small_graph, 4, seed=3)):
        front.update(Message(obj, loc.edge_id, loc.offset, 0.0))
    front.submit_nowait("acme", query_at(small_graph, 1.0))
    front.submit_nowait("hobby", query_at(small_graph, 1.1, seed=12))
    front.busy_until = 50.0
    with pytest.raises(ShedError):
        front.submit_nowait("hobby", query_at(small_graph, 2.0, seed=13))
    text = obs.registry.write_prometheus()
    assert 'repro_admitted_total{class="paid"} 1' in text
    assert 'repro_admitted_total{class="free"} 1' in text
    assert 'repro_shed_total{reason="brownout",class="free"} 1' in text
    assert "repro_serve_epochs_total 1" in text
    assert "repro_serve_latency_seconds" in text
    assert "repro_serve_overload_level" in text


def test_overload_summary_shape(serving, small_graph):
    front, _ = serving
    front.submit_nowait("acme", query_at(small_graph, 1.0))
    front.drain()
    summary = front.overload_summary()
    assert summary["admitted"] == {CLASS_PAID: 1}
    assert summary["epochs"] == 1
    assert summary["max_level_name"] == "normal"
    assert CLASS_PAID in summary["slo"]


def test_async_submit_parks_until_the_epoch_completes(serving, small_graph):
    front, _ = serving
    front.batch_size = 2

    async def scenario():
        task = asyncio.create_task(
            front.submit("acme", query_at(small_graph, 1.0))
        )
        await asyncio.sleep(0)
        assert not task.done()  # parked on its ticket
        # the second submit fills the epoch and flushes inline
        front.submit_nowait("acme", query_at(small_graph, 1.1, seed=12))
        return await task

    answer = asyncio.run(scenario())
    assert answer.objects()


def test_async_shed_raises_at_the_await_site(serving, small_graph):
    front, _ = serving
    front.busy_until = 50.0

    async def scenario():
        with pytest.raises(ShedError):
            await front.submit("hobby", query_at(small_graph, 1.0))
        await front.drain_async()

    asyncio.run(scenario())
