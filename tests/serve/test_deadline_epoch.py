"""Deadline expiry racing epoch batching (DESIGN.md §14).

A query whose deadline expires while it waits in its lane is shed at
epoch-start, *before* dispatch — the epoch executes without it.  The
regression pinned here is cost attribution: the backend report of a
replay containing the shed member must be counter-identical to one whose
epoch never contained it.
"""

from __future__ import annotations

import pytest

from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ShedError
from repro.mobility.workload import Query, random_locations
from repro.obs.slo import CLASS_PAID
from repro.serve.frontdoor import FrontDoor
from repro.serve.shedding import SHED_DEADLINE
from repro.serve.tenancy import TenantPolicy
from repro.server.metrics import ReplayReport
from repro.server.server import QueryServer

pytestmark = pytest.mark.serve

ROSTER = [
    TenantPolicy("shorty", CLASS_PAID, rate=100.0, burst=50.0,
                 deadline_s=0.05),
    TenantPolicy("acme", CLASS_PAID, rate=100.0, burst=50.0,
                 deadline_s=100.0),
]


def make_front(small_graph, fast_config) -> FrontDoor:
    index = GGridIndex(small_graph, fast_config)
    front = FrontDoor(
        QueryServer(index, obs=None), ROSTER, batch_size=4, obs=None
    )
    for obj, loc in enumerate(random_locations(small_graph, 8, seed=3)):
        front.update(Message(obj, loc.edge_id, loc.offset, 0.0))
    return front


def deterministic_counters(report: ReplayReport) -> dict:
    """The report's modelled-clock quantities (no wall-time fields)."""
    return {
        "n_updates": report.n_updates,
        "n_queries": report.n_queries,
        "n_batches": report.n_batches,
        "update_touches": report.update_touches,
        "batch_cells_deduped": report.batch_cells_deduped,
        "records": [
            (r.gpu_s, r.transfer_bytes, r.used_fallback, r.degraded_rung,
             r.retries, r.backoff_s, r.fanout, r.t)
            for r in report.query_records
        ],
    }


def test_in_lane_expiry_sheds_without_corrupting_batch_costs(
    small_graph, fast_config
):
    q_short = Query(1.0, random_locations(small_graph, 1, seed=21)[0], 4)
    q_long = Query(1.1, random_locations(small_graph, 1, seed=22)[0], 4)

    # replay A: both queries admitted; the backlog then jumps past
    # shorty's absolute deadline (1.05) before the epoch starts
    front_a = make_front(small_graph, fast_config)
    t_short = front_a.submit_nowait("shorty", q_short)
    t_long = front_a.submit_nowait("acme", q_long)
    front_a.busy_until = 5.0
    front_a.flush()

    with pytest.raises(ShedError) as exc:
        t_short.result()
    assert exc.value.reason == SHED_DEADLINE
    assert exc.value.tenant == "shorty"
    assert front_a.shed[(SHED_DEADLINE, CLASS_PAID)] == 1
    assert t_long.done
    answer_a = t_long.result()

    # replay B: an epoch that never contained the shed member
    front_b = make_front(small_graph, fast_config)
    t_only = front_b.submit_nowait("acme", q_long)
    front_b.busy_until = 5.0
    front_b.flush()
    answer_b = t_only.result()

    # identical answers, identical deterministic cost attribution
    assert answer_a.distances() == answer_b.distances()
    assert answer_a.objects() == answer_b.objects()
    assert deterministic_counters(front_a.backend_report) == (
        deterministic_counters(front_b.backend_report)
    )
    # and the shed member never reached the execution log
    queries_a = [e[1] for e in front_a.execution_log if e[0] == "query"]
    assert queries_a == [q_long]


def test_expired_member_does_not_block_the_rest_of_the_epoch(
    small_graph, fast_config
):
    front = make_front(small_graph, fast_config)
    tickets = [
        front.submit_nowait("shorty", Query(
            1.0, random_locations(small_graph, 1, seed=i)[0], 4
        ))
        for i in range(2)
    ]
    survivor = front.submit_nowait("acme", Query(
        1.2, random_locations(small_graph, 1, seed=9)[0], 4
    ))
    front.busy_until = 5.0
    front.flush()
    for ticket in tickets:
        with pytest.raises(ShedError):
            ticket.result()
    assert survivor.result().objects()
    assert front.shed[(SHED_DEADLINE, CLASS_PAID)] == 2
    assert front.epochs == 1


def test_an_epoch_of_only_expired_members_dispatches_nothing(
    small_graph, fast_config
):
    front = make_front(small_graph, fast_config)
    before = front.backend_report.n_batches
    ticket = front.submit_nowait("shorty", Query(
        1.0, random_locations(small_graph, 1, seed=5)[0], 4
    ))
    front.busy_until = 5.0
    front.flush()
    with pytest.raises(ShedError):
        ticket.result()
    assert front.backend_report.n_batches == before
    assert front.epochs == 0
