"""Token buckets, tenant policies and the admission controller."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ShedError
from repro.obs.slo import CLASS_FREE, CLASS_PAID
from repro.serve.tenancy import (
    SHED_QUOTA,
    AdmissionController,
    TenantPolicy,
    TokenBucket,
)

pytestmark = pytest.mark.serve


class TestTokenBucket:
    def test_burst_admits_back_to_back(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_with_modelled_time(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)
        # 0.5 modelled seconds at rate 2 accrues exactly one token
        assert bucket.take(0.5)
        assert not bucket.take(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.take(0.0)
        bucket.take(1000.0)  # long idle: refills to burst, not beyond
        assert bucket.tokens == pytest.approx(1.0)

    def test_time_never_rewinds(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.take(10.0)
        # an earlier timestamp sees the bucket as it was — no refill
        assert not bucket.take(5.0)

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ConfigError):
            TokenBucket(rate=rate, burst=1)

    def test_rejects_bad_burst(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantPolicy:
    def test_defaults_are_paid(self):
        policy = TenantPolicy("acme")
        assert policy.tenant_class == CLASS_PAID

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            TenantPolicy("")

    def test_rejects_unknown_class(self):
        with pytest.raises(ConfigError, match="tenant_class"):
            TenantPolicy("acme", tenant_class="platinum")

    def test_rejects_bad_deadline(self):
        with pytest.raises(ConfigError, match="deadline_s"):
            TenantPolicy("acme", deadline_s=0.0)

    def test_rejects_bad_quota(self):
        with pytest.raises(ConfigError):
            TenantPolicy("acme", rate=-1.0)


class TestAdmissionController:
    def test_quota_exhaustion_sheds_with_reason_and_class(self):
        admission = AdmissionController(
            [TenantPolicy("hobby", CLASS_FREE, rate=1.0, burst=1)]
        )
        admission.admit("hobby", 0.0)
        with pytest.raises(ShedError) as exc:
            admission.admit("hobby", 0.0)
        assert exc.value.tenant == "hobby"
        assert exc.value.tenant_class == CLASS_FREE
        assert exc.value.reason == SHED_QUOTA

    def test_buckets_are_per_tenant(self):
        admission = AdmissionController(
            [
                TenantPolicy("a", rate=1.0, burst=1),
                TenantPolicy("b", rate=1.0, burst=1),
            ]
        )
        admission.admit("a", 0.0)
        # a's empty bucket does not affect b
        admission.admit("b", 0.0)
        with pytest.raises(ShedError):
            admission.admit("a", 0.0)

    def test_unknown_tenant_is_config_error(self):
        admission = AdmissionController([TenantPolicy("acme")])
        with pytest.raises(ConfigError, match="unknown tenant"):
            admission.admit("ghost", 0.0)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigError, match="duplicate"):
            AdmissionController([TenantPolicy("acme"), TenantPolicy("acme")])

    def test_rejects_empty_roster(self):
        with pytest.raises(ConfigError):
            AdmissionController([])
