"""The deterministic service model, EWMA estimator and request context."""

from __future__ import annotations

import pytest

from repro.core.knn import KnnAnswer
from repro.errors import ConfigError
from repro.serve.deadline import (
    LatencyEstimator,
    RequestContext,
    ServiceModel,
)

pytestmark = pytest.mark.serve


def _answer(**overrides) -> KnnAnswer:
    fields = dict(
        cells_cleaned=3,
        candidates=10,
        unresolved=2,
        gpu_phase_s={"sdist": 1e-3, "first_k": 5e-4},
        backoff_s=0.0,
    )
    fields.update(overrides)
    return KnnAnswer(**fields)


class TestServiceModel:
    def test_charges_every_deterministic_counter(self):
        model = ServiceModel()
        expected = (
            model.base_s
            + 3 * model.cell_cost_s
            + 10 * model.candidate_cost_s
            + 2 * model.refine_cost_s
            + 1.5e-3  # simulated GPU seconds, taken as-is
        )
        assert model.service_s(_answer()) == pytest.approx(expected)

    def test_is_deterministic(self):
        model = ServiceModel()
        answer = _answer()
        assert model.service_s(answer) == model.service_s(answer)

    def test_degraded_rung_multiplies_host_work_only(self):
        model = ServiceModel(cpu_rung_factor=3.0)
        healthy = _answer(gpu_phase_s={})
        degraded = _answer(gpu_phase_s={}, degraded_rung="cpu_sdist")
        host = model.service_s(healthy) - model.base_s
        assert model.service_s(degraded) == pytest.approx(
            model.base_s + 3.0 * host
        )

    def test_backoff_charged_as_is(self):
        model = ServiceModel()
        base = model.service_s(_answer())
        assert model.service_s(_answer(backoff_s=0.25)) == pytest.approx(
            base + 0.25
        )

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            ServiceModel(cell_cost_s=-1e-4)

    def test_rejects_sub_unit_rung_factor(self):
        with pytest.raises(ConfigError, match="cpu_rung_factor"):
            ServiceModel(cpu_rung_factor=0.5)


class TestLatencyEstimator:
    def test_cold_estimate_is_initial(self):
        estimator = LatencyEstimator(initial_s=7e-3)
        assert estimator.estimate("paid") == 7e-3

    def test_first_observation_replaces_the_prior(self):
        estimator = LatencyEstimator(initial_s=5e-3)
        estimator.observe("paid", 0.1)
        assert estimator.estimate("paid") == pytest.approx(0.1)

    def test_ewma_after_the_first_observation(self):
        estimator = LatencyEstimator(alpha=0.5)
        estimator.observe("paid", 0.1)
        estimator.observe("paid", 0.2)
        assert estimator.estimate("paid") == pytest.approx(0.15)

    def test_classes_are_independent(self):
        estimator = LatencyEstimator()
        estimator.observe("paid", 0.1)
        assert estimator.estimate("free") == estimator.initial_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyEstimator(initial_s=0.0)
        with pytest.raises(ConfigError):
            LatencyEstimator(alpha=0.0)
        with pytest.raises(ConfigError):
            LatencyEstimator(alpha=1.5)


class TestRequestContext:
    def test_remaining_budget(self):
        context = RequestContext("acme", "paid", deadline_t=10.0)
        assert context.remaining_s(9.0) == pytest.approx(1.0)
        assert context.remaining_s(11.0) == pytest.approx(-1.0)

    def test_traceparent_defaults_to_none(self):
        assert RequestContext("acme", "paid", 1.0).traceparent is None
