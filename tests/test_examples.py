"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "3 nearest cars" in out
    assert "GPU:" in out


def test_tuning_example_importable():
    module = _load("tuning")
    assert callable(module.main)


def test_ridesharing_importable():
    module = _load("ridesharing")
    assert callable(module.main)


def test_fleet_comparison_importable():
    module = _load("fleet_comparison")
    assert callable(module.main)


def test_dispatch_console_importable():
    module = _load("dispatch_console")
    assert callable(module.main)


def test_point_to_point_runs(capsys):
    _load("point_to_point").main()
    out = capsys.readouterr().out
    assert "All four agree" in out
