"""Recovery conformance: crash anywhere, answer as if nothing happened.

The contract under test (DESIGN.md §11): for **any** byte-level
truncation of the write-ahead log — at record boundaries, one byte past
them, or mid-record — recovery from the surviving files produces an
index whose kNN and range answers are *byte-identical* (``repr`` of
every distance) to a fresh index fed exactly the surviving prefix of
updates.  The surviving prefix is defined as the complete, CRC-valid
records before the first tear; snapshots whose watermark runs ahead of
that prefix must be rejected, falling back to an older snapshot or a
from-scratch replay.

The durable directory is built once per module with rotation-sized WAL
segments, periodic compacted snapshots and mid-stream queries (so the
snapshots capture post-cleaning compacted lists, not just raw appends);
every truncation scenario then copies it, damages the copy and recovers.
"""

import random
import shutil

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.persist import DurabilityManager, SnapshotPolicy, recover
from repro.persist.wal import SEGMENT_MAGIC
from repro.roadnet.location import NetworkLocation

pytestmark = pytest.mark.persist

# t_delta is effectively infinite: expiry semantics are covered by the
# core suite, while this one isolates the durability contract
_CONFIG = GGridConfig(eta=3, delta_b=6, t_delta=1e9)
_N_OPS = 240
_QUERY_POINTS = [(0, 0.0), (17, 0.0), (53, 0.0)]


def _make_ops(graph, n=_N_OPS, objects=30, seed=13):
    """A seeded op stream: ingests plus ~10% removals of live objects."""
    rng = random.Random(seed)
    live = set()
    ops = []
    t = 0.0
    for _ in range(n):
        t += rng.uniform(0.05, 0.3)
        if live and rng.random() < 0.1:
            obj = rng.choice(sorted(live))
            ops.append(("remove", obj, None, None, t))
            live.discard(obj)
        else:
            obj = rng.randrange(objects)
            e = rng.randrange(graph.num_edges)
            ops.append(("ingest", obj, e, rng.uniform(0, graph.edge(e).weight), t))
            live.add(obj)
    return ops


def _apply(index, op):
    kind, obj, edge, offset, t = op
    if kind == "ingest":
        index.ingest(Message(obj, edge, offset, t))
    else:
        index.remove_object(obj, t)


def _answers(index, t_now):
    """Byte-exact answer fingerprint: objects + repr of every distance."""
    out = []
    for edge, offset in _QUERY_POINTS:
        for k in (1, 5, 12):
            a = index.knn(NetworkLocation(edge, offset), k, t_now=t_now)
            out.append((a.objects(), [repr(d) for d in a.distances()]))
    r = index.range_query(NetworkLocation(0, 0.0), radius=3.0, t_now=t_now)
    out.append((r.objects(), [repr(d) for d in r.distances()]))
    return out


@pytest.fixture(scope="module")
def durable_run(small_graph, tmp_path_factory):
    """Build the reference durability directory once: small segments (to
    force rotation), snapshots every 60 records, queries mid-stream."""
    base = tmp_path_factory.mktemp("durable")
    ops = _make_ops(small_graph)
    extents = []
    with DurabilityManager(
        base,
        max_segment_bytes=2048,
        fsync_every=16,
        snapshot_policy=SnapshotPolicy(every_records=60),
    ) as manager:
        index = GGridIndex(small_graph, _CONFIG)
        for i, op in enumerate(ops):
            kind, obj, edge, offset, t = op
            if kind == "ingest":
                extents.append(manager.log_ingest(Message(obj, edge, offset, t)))
            else:
                extents.append(manager.log_remove(obj, t))
            _apply(index, op)
            manager.maybe_snapshot(index)
            if i in (100, 180):  # queries clean cells -> compacted snapshots
                index.knn(NetworkLocation(0, 0.0), 5, t_now=t)
    assert len({e.segment for e in extents}) >= 3  # rotation really happened
    return base, ops, extents


def _crash_copy(base, tmp_path, segment, offset):
    """Copy the durable dir, then model a crash: every WAL segment after
    ``segment`` is gone, ``segment`` itself survives only to ``offset``."""
    crashed = tmp_path / "crashed"
    shutil.copytree(base, crashed)
    wal_dir = crashed / "wal"
    for seg in sorted(wal_dir.glob("wal-*.seg")):
        if seg.name > segment.name:
            seg.unlink()
        elif seg.name == segment.name:
            with open(seg, "r+b") as fh:
                fh.truncate(offset)
    return crashed


def _surviving_prefix(ops, extents, segment, offset):
    """The ops whose WAL records are complete in the crashed files."""
    prefix = []
    for op, extent in zip(ops, extents):
        if extent.segment.name < segment.name or (
            extent.segment.name == segment.name and extent.end_offset <= offset
        ):
            prefix.append(op)
        else:
            break
    return prefix


def _truncation_points(extents, seed=29):
    """Record boundaries, boundaries +1 byte, mid-record cuts, and the
    degenerate edges (empty file, bare magic)."""
    rng = random.Random(seed)
    points = []
    for i in rng.sample(range(len(extents)), 8):
        e = extents[i]
        points.append((e.segment, e.end_offset))  # clean boundary
        points.append((e.segment, e.end_offset + 1))  # 1 stray byte
        points.append((e.segment, e.end_offset - 3))  # mid-record tear
    first = extents[0].segment
    points.append((first, 0))  # segment truncated to nothing
    points.append((first, len(SEGMENT_MAGIC)))  # bare header survives
    last = extents[-1]
    points.append((last.segment, last.end_offset))  # nothing lost at all
    return points


def test_recovery_matches_fresh_replay_at_any_truncation(
    durable_run, small_graph, tmp_path
):
    base, ops, extents = durable_run
    for i, (segment, offset) in enumerate(_truncation_points(extents)):
        crashed = _crash_copy(base, tmp_path / f"case{i}", segment, offset)
        prefix = _surviving_prefix(ops, extents, segment, offset)

        recovered, report = recover(crashed, graph=small_graph, config=_CONFIG)
        assert report.records_failed == 0, report.failures
        assert report.snapshot_watermark + report.records_replayed == len(prefix)

        fresh = GGridIndex(small_graph, _CONFIG)
        for op in prefix:
            _apply(fresh, op)

        t_now = prefix[-1][4] if prefix else 1.0
        assert _answers(recovered, t_now) == _answers(fresh, t_now), (
            f"case {i}: truncation at {segment.name}:{offset} "
            f"({len(prefix)} surviving ops) diverged from fresh replay"
        )


def test_recovery_then_resume_then_recover_again(durable_run, small_graph, tmp_path):
    """After a crash, the writer resumes on the truncated log (trimming
    the torn tail), appends new updates, and a second recovery reflects
    prefix + new updates exactly."""
    base, ops, extents = durable_run
    mid = extents[150]
    crashed = _crash_copy(base, tmp_path, mid.segment, mid.end_offset - 2)
    prefix = _surviving_prefix(ops, extents, mid.segment, mid.end_offset - 2)

    with DurabilityManager(crashed, fsync_every=1) as manager:
        index, report = manager.recover()
        assert manager.wal.last_lsn == len(prefix)  # LSN run continues
        tail_ops = _make_ops(small_graph, n=25, seed=31)
        t0 = prefix[-1][4]
        shifted = [(k, o, e, off, t0 + t) for (k, o, e, off, t) in tail_ops]
        for op in shifted:
            kind, obj, edge, offset, t = op
            if kind == "ingest":
                manager.log_ingest(Message(obj, edge, offset, t))
            else:
                manager.log_remove(obj, t)
            _apply(index, op)
            manager.maybe_snapshot(index)

    recovered, report = recover(crashed, graph=small_graph, config=_CONFIG)
    assert not report.torn_tail  # resume trimmed the tear away
    fresh = GGridIndex(small_graph, _CONFIG)
    for op in prefix + shifted:
        _apply(fresh, op)
    t_now = shifted[-1][4]
    assert _answers(recovered, t_now) == _answers(fresh, t_now)
    assert _answers(index, t_now) == _answers(fresh, t_now)  # the live one too
