"""Recovery-path tests: snapshot selection, WAL replay, reporting."""

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import PersistenceError
from repro.obs import Observability
from repro.persist import DurabilityManager, SnapshotPolicy, recover
from repro.roadnet.location import NetworkLocation

pytestmark = pytest.mark.persist

_CONFIG = GGridConfig(eta=3, delta_b=8)


def _stream(graph, n, seed=7, objects=10):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        e = rng.randrange(graph.num_edges)
        obj = rng.randrange(objects)
        out.append(Message(obj, e, rng.uniform(0, graph.edge(e).weight), float(i + 1)))
    return out


def _run(manager, graph, messages):
    index = GGridIndex(graph, _CONFIG)
    for m in messages:
        manager.log_ingest(m)
        index.ingest(m)
        manager.maybe_snapshot(index)
    return index


def test_recover_snapshot_plus_tail(medium_graph, tmp_path):
    messages = _stream(medium_graph, 100)
    with DurabilityManager(
        tmp_path, snapshot_policy=SnapshotPolicy(every_records=30)
    ) as manager:
        live = _run(manager, medium_graph, messages)

    recovered, report = recover(tmp_path)
    assert report.snapshot_watermark == 90
    assert report.records_skipped == 90
    assert report.records_replayed == 10
    assert not report.torn_tail
    assert report.last_lsn == 100
    q = NetworkLocation(0, 0.1)
    assert recovered.knn(q, 5, t_now=100.0).distances() == pytest.approx(
        live.knn(q, 5, t_now=100.0).distances()
    )


def test_recover_without_snapshot_needs_graph(medium_graph, tmp_path):
    messages = _stream(medium_graph, 20)
    with DurabilityManager(tmp_path) as manager:  # no snapshot policy
        _run(manager, medium_graph, messages)

    with pytest.raises(PersistenceError, match="no usable snapshot"):
        recover(tmp_path)

    recovered, report = recover(tmp_path, graph=medium_graph, config=_CONFIG)
    assert report.snapshot_path is None
    assert report.records_replayed == 20
    assert recovered.num_objects > 0


def test_recover_empty_directory_raises(tmp_path):
    with pytest.raises(PersistenceError):
        recover(tmp_path)


def test_recover_tolerates_bad_record(medium_graph, tmp_path):
    """A WAL record the index rejects (here: removing an object that
    never existed) is counted and skipped, not fatal."""
    with DurabilityManager(tmp_path) as manager:
        for m in _stream(medium_graph, 10):
            manager.log_ingest(m)
        manager.log_remove(obj=999, t=11.0)  # never ingested

    recovered, report = recover(tmp_path, graph=medium_graph, config=_CONFIG)
    assert report.records_failed == 1
    assert report.records_replayed == 10
    assert "lsn=11" in report.failures[0]
    assert recovered.num_objects > 0


def test_recovery_metrics_and_span(medium_graph, tmp_path):
    obs = Observability.with_tracing()
    with DurabilityManager(
        tmp_path, snapshot_policy=SnapshotPolicy(every_records=5), obs=obs
    ) as manager:
        _run(manager, medium_graph, _stream(medium_graph, 12))

    _, report = recover(tmp_path, obs=obs)
    families = obs.registry.families()
    assert (
        families["repro_recovery_replayed_total"].default().value
        == report.records_replayed
    )
    assert families["repro_recoveries_total"].default().value == 1
    assert families["repro_wal_records_total"].labels(op="ingest").value == 12
    assert families["repro_snapshots_total"].default().value == 2
    spans = [s for s in obs.tracer.spans if s.name == "recovery"]
    assert len(spans) == 1
    assert spans[0].attrs["records_replayed"] == report.records_replayed


def test_manager_resumes_policy_cursor(medium_graph, tmp_path):
    """A restarted manager must not immediately re-snapshot: its cursor
    resumes from the newest on-disk snapshot's watermark."""
    policy = SnapshotPolicy(every_records=10)
    with DurabilityManager(tmp_path, snapshot_policy=policy) as manager:
        _run(manager, medium_graph, _stream(medium_graph, 10))
        assert manager.snapshots.snapshots_written == 1

    with DurabilityManager(tmp_path, snapshot_policy=policy) as manager:
        index, _ = manager.recover()
        for m in _stream(medium_graph, 9, seed=8):
            manager.log_ingest(m)
            index.ingest(m)
            manager.maybe_snapshot(index)
        # 9 records past the resumed watermark of 10: not due yet
        assert manager.snapshots.snapshots_written == 0
        manager.log_ingest(Message(0, 0, 0.1, 50.0))
        index.ingest(Message(0, 0, 0.1, 50.0))
        assert manager.maybe_snapshot(index) is not None


def test_snapshot_policy_validation():
    with pytest.raises(PersistenceError):
        SnapshotPolicy(every_records=-1)
    with pytest.raises(PersistenceError):
        SnapshotPolicy(every_seconds=-0.5)
    assert not SnapshotPolicy().enabled
    assert SnapshotPolicy(every_seconds=5.0).enabled


def test_time_based_snapshot_trigger(medium_graph, tmp_path):
    with DurabilityManager(
        tmp_path, snapshot_policy=SnapshotPolicy(every_seconds=10.0)
    ) as manager:
        index = GGridIndex(medium_graph, _CONFIG)
        for t in (1.0, 5.0, 9.0):
            m = Message(0, 0, 0.1, t)
            manager.log_ingest(m)
            index.ingest(m)
            assert manager.maybe_snapshot(index) is None
        m = Message(0, 0, 0.1, 12.0)  # event time crosses the 10s window
        manager.log_ingest(m)
        index.ingest(m)
        assert manager.maybe_snapshot(index) is not None
