"""Unit tests for the versioned, CRC-wrapped snapshot store."""

import json
import random
import zlib

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import PersistenceError
from repro.persist.snapshot import SnapshotStore, _canonical

pytestmark = pytest.mark.persist


def _index(graph, objects=12, seed=5):
    rng = random.Random(seed)
    index = GGridIndex(graph, GGridConfig(eta=3, delta_b=8))
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), 1.0))
    return index


def test_write_load_roundtrip(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    path = store.write(index, watermark=12)
    loaded = store.load(path)
    assert loaded.watermark == 12
    assert loaded.body["version"] == 2
    assert len(loaded.body["objects"]) == 12


def test_newest_valid_prefers_latest(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    store.write(index, watermark=10)
    store.write(index, watermark=20)
    snapshot, rejected = store.newest_valid()
    assert snapshot.watermark == 20
    assert rejected == 0


def test_corrupt_newest_falls_back_to_older(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    store.write(index, watermark=10)
    newest = store.write(index, watermark=20)
    # the tmp+rename protocol prevents the writer from leaving a torn
    # file, but disk corruption can still produce one; selection must
    # degrade to the older snapshot, never fail outright
    data = newest.read_text()
    newest.write_text(data[: len(data) // 2])
    snapshot, rejected = store.newest_valid()
    assert snapshot.watermark == 10
    assert rejected == 1


def test_crc_mismatch_rejected(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    path = store.write(index, watermark=5)
    envelope = json.loads(path.read_text())
    envelope["body"]["latest_time"] = 999.0  # tamper without fixing the CRC
    path.write_text(json.dumps(envelope))
    with pytest.raises(PersistenceError, match="CRC"):
        store.load(path)


def test_version_mismatch_rejected(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    path = store.write(index, watermark=5)
    envelope = json.loads(path.read_text())
    envelope["body"]["version"] = 1
    # recompute a valid CRC so only the version check can fire
    envelope["crc"] = zlib.crc32(_canonical(envelope["body"]))
    path.write_text(json.dumps(envelope))
    with pytest.raises(PersistenceError, match="version"):
        store.load(path)


def test_watermark_cap_skips_snapshots_ahead_of_wal(medium_graph, tmp_path):
    """A snapshot whose watermark exceeds the surviving WAL reflects
    records the log lost; recovery must fall back past it."""
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path)
    store.write(index, watermark=10)
    store.write(index, watermark=50)
    snapshot, rejected = store.newest_valid(max_watermark=30)
    assert snapshot.watermark == 10
    assert rejected == 1
    none_usable, rejected = store.newest_valid(max_watermark=5)
    assert none_usable is None
    assert rejected == 2


def test_prune_keeps_newest(medium_graph, tmp_path):
    index = _index(medium_graph)
    store = SnapshotStore(tmp_path, keep=2)
    for wm in (10, 20, 30, 40):
        store.write(index, watermark=wm)
    paths = store.paths()
    assert len(paths) == 2
    assert [store.load(p).watermark for p in paths] == [30, 40]


def test_invalid_keep_rejected(tmp_path):
    with pytest.raises(PersistenceError):
        SnapshotStore(tmp_path, keep=0)


def test_empty_store(tmp_path):
    snapshot, rejected = SnapshotStore(tmp_path).newest_valid()
    assert snapshot is None
    assert rejected == 0
