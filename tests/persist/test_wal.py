"""Unit tests for the CRC-framed, segment-rotating write-ahead log."""

import pytest

from repro.core.messages import Message
from repro.errors import PersistenceError
from repro.obs.metrics import MetricsRegistry
from repro.persist.wal import (
    MAX_RECORD_BYTES,
    SEGMENT_MAGIC,
    WalRecord,
    WriteAheadLog,
    iter_wal,
    read_wal,
)

pytestmark = pytest.mark.persist


def _msg(obj: int, t: float) -> Message:
    return Message(obj, obj % 7, 0.25 * obj, t)


def test_roundtrip_ingest_and_remove(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        for i in range(10):
            wal.append_ingest(_msg(i, float(i)))
        wal.append_remove(3, 10.0)
    result = read_wal(tmp_path)
    assert not result.torn
    assert [r.lsn for r in result.records] == list(range(1, 12))
    assert result.records[0].op == "ingest"
    assert result.records[-1].op == "remove"
    assert result.records[-1].obj == 3
    got = result.records[4].to_message()
    assert (got.obj, got.edge, got.offset, got.t) == (4, 4, 1.0, 4.0)


def test_remove_record_refuses_to_message(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append_remove(1, 1.0)
    record = next(iter_wal(tmp_path))
    with pytest.raises(PersistenceError):
        record.to_message()


def test_segment_rotation(tmp_path):
    frame = len(WalRecord(1, "ingest", 0, 0, 0.0, 0.0).encode())
    # room for ~3 records per segment
    with WriteAheadLog(tmp_path, max_segment_bytes=len(SEGMENT_MAGIC) + 3 * frame + 8) as wal:
        for i in range(10):
            wal.append_ingest(_msg(0, float(i)))
        assert len(wal.segments()) > 1
    result = read_wal(tmp_path)
    assert not result.torn
    assert len(result.records) == 10
    assert [r.lsn for r in result.records] == list(range(1, 11))


def test_torn_tail_mid_record(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        extents = [wal.append_ingest(_msg(i, float(i))) for i in range(6)]
    third = extents[2]
    # cut 3 bytes into the fourth record's frame
    with open(third.segment, "r+b") as fh:
        fh.truncate(third.end_offset + 3)
    result = read_wal(tmp_path)
    assert result.torn
    assert result.torn_segment == third.segment
    assert [r.lsn for r in result.records] == [1, 2, 3]


def test_corrupt_crc_stops_replay(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        extents = [wal.append_ingest(_msg(i, float(i))) for i in range(4)]
    segment = extents[0].segment
    data = bytearray(segment.read_bytes())
    # flip one payload byte inside the second record
    data[extents[1].end_offset - 1] ^= 0xFF
    segment.write_bytes(bytes(data))
    result = read_wal(tmp_path)
    assert result.torn
    assert [r.lsn for r in result.records] == [1]  # stops at the bad frame


def test_oversized_length_treated_as_tear(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append_ingest(_msg(0, 0.0))
        extent = wal.append_ingest(_msg(1, 1.0))
    with open(extent.segment, "ab") as fh:
        fh.write((MAX_RECORD_BYTES + 1).to_bytes(4, "little") + b"\x00" * 8)
    result = read_wal(tmp_path)
    assert result.torn
    assert len(result.records) == 2


def test_foreign_file_rejected(tmp_path):
    (tmp_path / "wal-00000001.seg").write_bytes(b"not a wal segment at all")
    result = read_wal(tmp_path)
    assert result.torn
    assert result.records == []


def test_resume_truncates_torn_tail_and_continues_lsn(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        extents = [wal.append_ingest(_msg(i, float(i))) for i in range(5)]
    # crash: half of record 4 survives
    with open(extents[3].segment, "r+b") as fh:
        fh.truncate(extents[3].end_offset - 2)
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 3  # resumed after the surviving prefix
        wal.append_ingest(_msg(9, 9.0))
    result = read_wal(tmp_path)
    assert not result.torn  # the tail was trimmed away
    assert [r.lsn for r in result.records] == [1, 2, 3, 4]
    assert result.records[-1].obj == 9


def test_resume_drops_orphan_segments_after_tear(tmp_path):
    frame = len(WalRecord(1, "ingest", 0, 0, 0.0, 0.0).encode())
    cap = len(SEGMENT_MAGIC) + 2 * frame + 8
    with WriteAheadLog(tmp_path, max_segment_bytes=cap) as wal:
        extents = [wal.append_ingest(_msg(0, float(i))) for i in range(6)]
    segments = sorted({e.segment for e in extents})
    assert len(segments) >= 3
    # corrupt the magic of the middle segment: everything after is orphaned
    with open(segments[1], "r+b") as fh:
        fh.write(b"XXXX")
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 2  # only the first segment's records survive
        remaining = wal.segments()
    assert segments[1] not in remaining
    assert segments[2] not in remaining


def test_fsync_every_append(tmp_path):
    with WriteAheadLog(tmp_path, fsync_every=1) as wal:
        for i in range(5):
            wal.append_ingest(_msg(i, float(i)))
        assert wal.fsyncs >= 5


def test_fsync_batched(tmp_path):
    with WriteAheadLog(tmp_path, fsync_every=4) as wal:
        for i in range(7):
            wal.append_ingest(_msg(i, float(i)))
        mid = wal.fsyncs
        assert mid == 1  # one batch of 4; the partial batch not yet synced
        wal.sync()
        assert wal.fsyncs == mid + 1


def test_append_after_close_rejected(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.close()
    with pytest.raises(PersistenceError):
        wal.append_ingest(_msg(0, 0.0))


def test_invalid_parameters_rejected(tmp_path):
    with pytest.raises(PersistenceError):
        WriteAheadLog(tmp_path, max_segment_bytes=4)
    with pytest.raises(PersistenceError):
        WriteAheadLog(tmp_path, fsync_every=-1)


def test_metrics_published(tmp_path):
    registry = MetricsRegistry()
    with WriteAheadLog(tmp_path, registry=registry, fsync_every=1) as wal:
        wal.append_ingest(_msg(0, 0.0))
        wal.append_ingest(_msg(1, 1.0))
        wal.append_remove(0, 2.0)
    families = registry.families()
    records = families["repro_wal_records_total"]
    assert records.labels(op="ingest").value == 2
    assert records.labels(op="remove").value == 1
    assert families["repro_wal_bytes_total"].default().value == wal.bytes_appended
    assert families["repro_wal_fsyncs_total"].default().value >= 3
    assert families["repro_wal_segments_total"].default().value >= 1
